(* Tests for the observability library (Qdt_obs): clock monotonicity,
   metrics (counter reset, histogram bucket geometry and overflow,
   snapshot diff), trace (balanced span nesting, exception safety, ring
   wrap-around), and JSON validity of both trace exporters for a Bell
   run on every registered backend — checked with a self-contained
   recursive-descent JSON parser, since the repo deliberately carries no
   JSON dependency. *)

module Clock = Qdt_obs.Clock
module Metrics = Qdt_obs.Metrics
module Trace = Qdt_obs.Trace
module Generators = Qdt_circuit.Generators

(* ------------------------------------------------------------------ *)
(* A minimal JSON validity checker                                      *)
(* ------------------------------------------------------------------ *)

let validate_json ~what s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.failf "%s: invalid JSON at offset %d: %s" what !pos msg in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let keyword k =
    if !pos + String.length k <= n && String.sub s !pos (String.length k) = k then
      pos := !pos + String.length k
    else fail (Printf.sprintf "expected %s" k)
  in
  let digits () =
    let start = !pos in
    while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected digits"
  in
  let number () =
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ())
  in
  let string_lit () =
    expect '"';
    let closed = ref false in
    while not !closed do
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
          advance ();
          closed := true
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some _ -> advance ()
    done
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some 't' -> keyword "true"
    | Some 'f' -> keyword "false"
    | Some 'n' -> keyword "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "expected a value"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else begin
      let continue_ = ref true in
      while !continue_ do
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance ()
        | Some '}' ->
            advance ();
            continue_ := false
        | _ -> fail "expected , or }"
      done
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else begin
      let continue_ = ref true in
      while !continue_ do
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance ()
        | Some ']' ->
            advance ();
            continue_ := false
        | _ -> fail "expected , or ]"
      done
    end
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* Every test leaves both subsystems disabled and the registry zeroed. *)
let isolated f () =
  Metrics.set_enabled true;
  Metrics.reset ();
  Trace.configure ();
  Trace.set_enabled false;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ();
      Trace.set_enabled false;
      Trace.clear ())
    f

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock_monotone () =
  let prev = ref (Clock.now_ns ()) in
  for _ = 1 to 10_000 do
    let t = Clock.now_ns () in
    if t < !prev then Alcotest.failf "clock went backwards: %d < %d" t !prev;
    prev := t
  done

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_histogram_buckets () =
  (* bucket 0: v <= 0; bucket i >= 1: 2^(i-1) <= v < 2^i; last = overflow *)
  Alcotest.(check int) "v=0" 0 (Metrics.bucket_of 0);
  Alcotest.(check int) "v<0" 0 (Metrics.bucket_of (-17));
  Alcotest.(check int) "v=1" 1 (Metrics.bucket_of 1);
  Alcotest.(check int) "v=2" 2 (Metrics.bucket_of 2);
  Alcotest.(check int) "v=3" 2 (Metrics.bucket_of 3);
  Alcotest.(check int) "v=4" 3 (Metrics.bucket_of 4);
  for i = 1 to Metrics.num_buckets - 2 do
    let lo = 1 lsl (i - 1) in
    Alcotest.(check int) (Printf.sprintf "lower edge 2^%d" (i - 1)) i (Metrics.bucket_of lo);
    if i < Metrics.num_buckets - 2 then
      Alcotest.(check int)
        (Printf.sprintf "upper edge 2^%d - 1" i)
        i
        (Metrics.bucket_of ((2 * lo) - 1))
  done;
  Alcotest.(check int) "overflow" (Metrics.num_buckets - 1) (Metrics.bucket_of max_int)

let test_histogram_observe =
  isolated @@ fun () ->
  let h = Metrics.histogram "test.h" in
  List.iter (Metrics.observe h) [ 1; 3; 3; 100 ];
  match List.assoc "test.h" (Metrics.snapshot ()) with
  | Metrics.Histogram_v { count; sum; max_value; buckets } ->
      Alcotest.(check int) "count" 4 count;
      Alcotest.(check int) "sum" 107 sum;
      Alcotest.(check int) "max" 100 max_value;
      Alcotest.(check int) "bucket of 1" 1 buckets.(Metrics.bucket_of 1);
      Alcotest.(check int) "bucket of 3" 2 buckets.(Metrics.bucket_of 3);
      Alcotest.(check int) "bucket of 100" 1 buckets.(Metrics.bucket_of 100);
      Alcotest.(check int) "total bucketed" 4 (Array.fold_left ( + ) 0 buckets)
  | _ -> Alcotest.fail "test.h is not a histogram"

let test_counter_reset =
  isolated @@ fun () ->
  let c = Metrics.counter "test.c" in
  Metrics.incr c;
  Metrics.add c 41;
  (match List.assoc "test.c" (Metrics.snapshot ()) with
  | Metrics.Counter_v v -> Alcotest.(check int) "counted" 42 v
  | _ -> Alcotest.fail "test.c is not a counter");
  Metrics.reset ();
  (match List.assoc "test.c" (Metrics.snapshot ()) with
  | Metrics.Counter_v v -> Alcotest.(check int) "reset to zero" 0 v
  | _ -> Alcotest.fail "test.c lost by reset");
  (* disabled recording is a no-op *)
  Metrics.set_enabled false;
  Metrics.incr c;
  Metrics.set_enabled true;
  match List.assoc "test.c" (Metrics.snapshot ()) with
  | Metrics.Counter_v v -> Alcotest.(check int) "no-op while disabled" 0 v
  | _ -> Alcotest.fail "test.c vanished"

let test_remove =
  isolated @@ fun () ->
  let c = Metrics.counter "test.keep" in
  let probe = Metrics.counter "test.probe" in
  Metrics.incr c;
  Metrics.incr probe;
  Metrics.remove "test.probe";
  let snap = Metrics.snapshot () in
  Alcotest.(check bool) "removed name gone" true
    (List.assoc_opt "test.probe" snap = None);
  (match List.assoc_opt "test.keep" snap with
  | Some (Metrics.Counter_v v) -> Alcotest.(check int) "others untouched" 1 v
  | _ -> Alcotest.fail "test.keep lost");
  (* the detached handle stays usable but invisible... *)
  Metrics.incr probe;
  Alcotest.(check bool) "detached increments invisible" true
    (List.assoc_opt "test.probe" (Metrics.snapshot ()) = None);
  (* ...and re-requesting the name registers a fresh instrument *)
  Metrics.incr (Metrics.counter "test.probe");
  match List.assoc_opt "test.probe" (Metrics.snapshot ()) with
  | Some (Metrics.Counter_v v) -> Alcotest.(check int) "fresh registration" 1 v
  | _ -> Alcotest.fail "name cannot be reused after remove"

let test_sorted_rendering =
  isolated @@ fun () ->
  (* register deliberately out of order *)
  List.iter (fun n -> Metrics.incr (Metrics.counter n)) [ "z.last"; "a.first"; "m.mid" ];
  Metrics.set (Metrics.gauge "b.gauge") 1.5;
  let snap = Metrics.snapshot () in
  (* instrument order is sorted by name (histograms expand to a
     count/sum/max triplet in place, so only base names are compared) *)
  let keys = List.map fst (Metrics.flatten snap) in
  let ours = List.filter (fun k -> List.mem k [ "a.first"; "b.gauge"; "m.mid"; "z.last" ]) keys in
  Alcotest.(check (list string)) "flatten sorted by name"
    [ "a.first"; "b.gauge"; "m.mid"; "z.last" ] ours;
  (* and the rendering is deterministic call to call *)
  Alcotest.(check (list string)) "flatten deterministic" keys
    (List.map fst (Metrics.flatten snap));
  let json = Metrics.to_json snap in
  validate_json ~what:"sorted metrics json" json;
  (* keys appear in sorted order in the serialised text too *)
  let offset k =
    let needle = "\"" ^ k ^ "\"" in
    let rec find i =
      if i + String.length needle > String.length json then
        Alcotest.failf "key %s missing from json" k
      else if String.sub json i (String.length needle) = needle then i
      else find (i + 1)
    in
    find 0
  in
  Alcotest.(check bool) "json key order deterministic" true
    (offset "a.first" < offset "b.gauge"
    && offset "b.gauge" < offset "m.mid"
    && offset "m.mid" < offset "z.last")

let test_diff =
  isolated @@ fun () ->
  let c = Metrics.counter "test.d" in
  let g = Metrics.gauge "test.g" in
  Metrics.add c 10;
  Metrics.set g 5.0;
  let before = Metrics.snapshot () in
  Metrics.add c 7;
  Metrics.set g 2.0;
  let d = Metrics.diff ~before ~after:(Metrics.snapshot ()) in
  (match List.assoc "test.d" d with
  | Metrics.Counter_v v -> Alcotest.(check int) "counter delta" 7 v
  | _ -> Alcotest.fail "diff lost counter");
  match List.assoc "test.g" d with
  | Metrics.Gauge_v v -> Alcotest.(check (float 1e-9)) "gauge keeps after" 2.0 v
  | _ -> Alcotest.fail "diff lost gauge"

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

(* Replay the event list against a stack: every End must match the
   innermost open Begin, and nothing may stay open. *)
let check_balanced events =
  let stack = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.phase with
      | Trace.Begin -> stack := e.Trace.name :: !stack
      | Trace.End -> (
          match !stack with
          | top :: rest ->
              Alcotest.(check string) "end matches innermost begin" top e.Trace.name;
              stack := rest
          | [] -> Alcotest.failf "end %s without begin" e.Trace.name))
    events;
  Alcotest.(check (list string)) "all spans closed" [] !stack

let test_span_nesting =
  isolated @@ fun () ->
  Trace.set_enabled true;
  Trace.with_span "outer" (fun () ->
      Trace.with_span "inner" (fun () -> ());
      Trace.with_span "inner2" (fun () -> ()));
  (try Trace.with_span "raises" (fun () -> failwith "boom") with Failure _ -> ());
  let events = Trace.events () in
  Alcotest.(check int) "8 events" 8 (List.length events);
  check_balanced events;
  Alcotest.(check int) "depth back to 0" 0 (Trace.depth ());
  let ts = List.map (fun (e : Trace.event) -> e.Trace.ts_ns) events in
  Alcotest.(check bool) "timestamps ordered" true (List.sort compare ts = ts)

let test_ring_wrap =
  isolated @@ fun () ->
  Trace.configure ~capacity:4 ();
  Trace.set_enabled true;
  for i = 1 to 5 do
    Trace.with_span (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  let events = Trace.events () in
  Alcotest.(check int) "ring holds capacity" 4 (List.length events);
  Alcotest.(check int) "drops counted" 6 (Trace.dropped_events ());
  (* the survivors are the newest events *)
  match List.rev events with
  | last :: _ -> Alcotest.(check string) "newest survives" "s5" last.Trace.name
  | [] -> Alcotest.fail "empty ring"

(* After a ring wrap the Chrome export's metadata must carry the drop
   count, so a consumer can detect truncation from the file alone. *)
let test_chrome_drop_metadata =
  isolated @@ fun () ->
  Trace.configure ~capacity:4 ();
  Trace.set_enabled true;
  for i = 1 to 5 do
    Trace.with_span (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  Trace.set_enabled false;
  Alcotest.(check int) "drops happened" 6 (Trace.dropped_events ());
  let path = Filename.temp_file "qdt_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.export_chrome path;
      let src = read_file path in
      validate_json ~what:"wrapped chrome trace" src;
      match Qdt_obs.Json.parse src with
      | Error e -> Alcotest.failf "chrome export does not parse: %s" e
      | Ok j -> (
          match Qdt_obs.Json.member "metadata" j with
          | None -> Alcotest.fail "no top-level metadata object"
          | Some meta ->
              (match
                 Option.bind (Qdt_obs.Json.member "dropped_events" meta)
                   Qdt_obs.Json.to_number
               with
              | Some d -> Alcotest.(check (float 0.0)) "dropped_events recorded" 6.0 d
              | None -> Alcotest.fail "metadata lacks dropped_events");
              (match
                 Option.bind (Qdt_obs.Json.member "recorded_events" meta)
                   Qdt_obs.Json.to_number
               with
              | Some r -> Alcotest.(check (float 0.0)) "recorded_events recorded" 4.0 r
              | None -> Alcotest.fail "metadata lacks recorded_events")))

(* Mid-circuit measurement goes through Sim.run (the CLI's final-state
   path strips measures), so drive it directly and check the span mix. *)
let test_measure_span =
  isolated @@ fun () ->
  Trace.set_enabled true;
  let c = Qdt_circuit.Circuit.measure_all Generators.bell in
  let _ = Qdt_dd.Sim.run ~seed:7 c in
  let events = Trace.events () in
  check_balanced events;
  let names =
    List.sort_uniq compare
      (List.map (fun (e : Trace.event) -> e.Trace.name) events)
  in
  Alcotest.(check bool) "gate span present" true (List.mem "dd.gate" names);
  Alcotest.(check bool) "measure span present" true (List.mem "dd.measure" names)

(* ------------------------------------------------------------------ *)
(* Exporters: Bell circuit on every registered backend                  *)
(* ------------------------------------------------------------------ *)

let test_exporters_every_backend =
  isolated @@ fun () ->
  let bell = Generators.bell in
  List.iter
    (fun (module B : Qdt.Backend.BACKEND) ->
      Trace.configure ();
      Trace.set_enabled true;
      (* Exercise whatever Bell operations the backend offers (e.g. the
         tensor-network backend computes quantities but cannot sample). *)
      let ran = ref 0 in
      (match B.sample ~shots:20 bell with Ok _ -> incr ran | Error _ -> ());
      (match B.simulate bell with Ok _ -> incr ran | Error _ -> ());
      (match B.expectation_z bell 0 with Ok _ -> incr ran | Error _ -> ());
      if !ran = 0 then Alcotest.failf "backend %s ran no Bell operation" B.name;
      Trace.set_enabled false;
      if Trace.events () = [] then Alcotest.failf "backend %s recorded no spans" B.name;
      check_balanced (Trace.events ());
      let chrome = Filename.temp_file "qdt_trace" ".json" in
      let jsonl = Filename.temp_file "qdt_trace" ".jsonl" in
      Fun.protect
        ~finally:(fun () ->
          Sys.remove chrome;
          Sys.remove jsonl)
        (fun () ->
          Trace.export_chrome chrome;
          Trace.export_jsonl jsonl;
          validate_json ~what:(B.name ^ " chrome trace") (read_file chrome);
          String.split_on_char '\n' (read_file jsonl)
          |> List.iter (fun line ->
                 if String.trim line <> "" then
                   validate_json ~what:(B.name ^ " jsonl line") line));
      Trace.clear ())
    (Qdt.Registry.all ());
  (* the metrics JSON dump is valid too *)
  validate_json ~what:"metrics json" (Metrics.to_json (Metrics.snapshot ()))

let () =
  Alcotest.run "qdt_obs"
    [
      ("clock", [ Alcotest.test_case "monotone" `Quick test_clock_monotone ]);
      ( "metrics",
        [
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram observe" `Quick test_histogram_observe;
          Alcotest.test_case "counter reset" `Quick test_counter_reset;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "sorted rendering" `Quick test_sorted_rendering;
          Alcotest.test_case "snapshot diff" `Quick test_diff;
        ] );
      ( "trace",
        [
          Alcotest.test_case "balanced nesting" `Quick test_span_nesting;
          Alcotest.test_case "ring wrap" `Quick test_ring_wrap;
          Alcotest.test_case "chrome export drop metadata" `Quick test_chrome_drop_metadata;
          Alcotest.test_case "mid-circuit measure span" `Quick test_measure_span;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "bell on every backend" `Quick test_exporters_every_backend;
        ] );
    ]
