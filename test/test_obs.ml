(* Tests for the observability library (Qdt_obs): clock monotonicity,
   metrics (counter reset, histogram bucket geometry and overflow,
   snapshot diff), trace (balanced span nesting, exception safety, ring
   wrap-around), and JSON validity of both trace exporters for a Bell
   run on every registered backend — checked with a self-contained
   recursive-descent JSON parser, since the repo deliberately carries no
   JSON dependency. *)

module Clock = Qdt_obs.Clock
module Metrics = Qdt_obs.Metrics
module Trace = Qdt_obs.Trace
module Generators = Qdt_circuit.Generators

(* ------------------------------------------------------------------ *)
(* A minimal JSON validity checker                                      *)
(* ------------------------------------------------------------------ *)

let validate_json ~what s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.failf "%s: invalid JSON at offset %d: %s" what !pos msg in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let keyword k =
    if !pos + String.length k <= n && String.sub s !pos (String.length k) = k then
      pos := !pos + String.length k
    else fail (Printf.sprintf "expected %s" k)
  in
  let digits () =
    let start = !pos in
    while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected digits"
  in
  let number () =
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ())
  in
  let string_lit () =
    expect '"';
    let closed = ref false in
    while not !closed do
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
          advance ();
          closed := true
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some _ -> advance ()
    done
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some 't' -> keyword "true"
    | Some 'f' -> keyword "false"
    | Some 'n' -> keyword "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "expected a value"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else begin
      let continue_ = ref true in
      while !continue_ do
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance ()
        | Some '}' ->
            advance ();
            continue_ := false
        | _ -> fail "expected , or }"
      done
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else begin
      let continue_ = ref true in
      while !continue_ do
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance ()
        | Some ']' ->
            advance ();
            continue_ := false
        | _ -> fail "expected , or ]"
      done
    end
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* Every test leaves both subsystems disabled and the registry zeroed. *)
let isolated f () =
  Metrics.set_enabled true;
  Metrics.reset ();
  Trace.configure ();
  Trace.set_enabled false;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ();
      Trace.set_enabled false;
      Trace.clear ())
    f

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock_monotone () =
  let prev = ref (Clock.now_ns ()) in
  for _ = 1 to 10_000 do
    let t = Clock.now_ns () in
    if t < !prev then Alcotest.failf "clock went backwards: %d < %d" t !prev;
    prev := t
  done

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_histogram_buckets () =
  (* bucket 0: v <= 0; bucket i >= 1: 2^(i-1) <= v < 2^i; last = overflow *)
  Alcotest.(check int) "v=0" 0 (Metrics.bucket_of 0);
  Alcotest.(check int) "v<0" 0 (Metrics.bucket_of (-17));
  Alcotest.(check int) "v=1" 1 (Metrics.bucket_of 1);
  Alcotest.(check int) "v=2" 2 (Metrics.bucket_of 2);
  Alcotest.(check int) "v=3" 2 (Metrics.bucket_of 3);
  Alcotest.(check int) "v=4" 3 (Metrics.bucket_of 4);
  for i = 1 to Metrics.num_buckets - 2 do
    let lo = 1 lsl (i - 1) in
    Alcotest.(check int) (Printf.sprintf "lower edge 2^%d" (i - 1)) i (Metrics.bucket_of lo);
    if i < Metrics.num_buckets - 2 then
      Alcotest.(check int)
        (Printf.sprintf "upper edge 2^%d - 1" i)
        i
        (Metrics.bucket_of ((2 * lo) - 1))
  done;
  Alcotest.(check int) "overflow" (Metrics.num_buckets - 1) (Metrics.bucket_of max_int)

let test_histogram_observe =
  isolated @@ fun () ->
  let h = Metrics.histogram "test.h" in
  List.iter (Metrics.observe h) [ 1; 3; 3; 100 ];
  match List.assoc "test.h" (Metrics.snapshot ()) with
  | Metrics.Histogram_v { count; sum; max_value; buckets } ->
      Alcotest.(check int) "count" 4 count;
      Alcotest.(check int) "sum" 107 sum;
      Alcotest.(check int) "max" 100 max_value;
      Alcotest.(check int) "bucket of 1" 1 buckets.(Metrics.bucket_of 1);
      Alcotest.(check int) "bucket of 3" 2 buckets.(Metrics.bucket_of 3);
      Alcotest.(check int) "bucket of 100" 1 buckets.(Metrics.bucket_of 100);
      Alcotest.(check int) "total bucketed" 4 (Array.fold_left ( + ) 0 buckets)
  | _ -> Alcotest.fail "test.h is not a histogram"

let test_counter_reset =
  isolated @@ fun () ->
  let c = Metrics.counter "test.c" in
  Metrics.incr c;
  Metrics.add c 41;
  (match List.assoc "test.c" (Metrics.snapshot ()) with
  | Metrics.Counter_v v -> Alcotest.(check int) "counted" 42 v
  | _ -> Alcotest.fail "test.c is not a counter");
  Metrics.reset ();
  (match List.assoc "test.c" (Metrics.snapshot ()) with
  | Metrics.Counter_v v -> Alcotest.(check int) "reset to zero" 0 v
  | _ -> Alcotest.fail "test.c lost by reset");
  (* disabled recording is a no-op *)
  Metrics.set_enabled false;
  Metrics.incr c;
  Metrics.set_enabled true;
  match List.assoc "test.c" (Metrics.snapshot ()) with
  | Metrics.Counter_v v -> Alcotest.(check int) "no-op while disabled" 0 v
  | _ -> Alcotest.fail "test.c vanished"

let test_remove =
  isolated @@ fun () ->
  let c = Metrics.counter "test.keep" in
  let probe = Metrics.counter "test.probe" in
  Metrics.incr c;
  Metrics.incr probe;
  Metrics.remove "test.probe";
  let snap = Metrics.snapshot () in
  Alcotest.(check bool) "removed name gone" true
    (List.assoc_opt "test.probe" snap = None);
  (match List.assoc_opt "test.keep" snap with
  | Some (Metrics.Counter_v v) -> Alcotest.(check int) "others untouched" 1 v
  | _ -> Alcotest.fail "test.keep lost");
  (* the detached handle stays usable but invisible... *)
  Metrics.incr probe;
  Alcotest.(check bool) "detached increments invisible" true
    (List.assoc_opt "test.probe" (Metrics.snapshot ()) = None);
  (* ...and re-requesting the name registers a fresh instrument *)
  Metrics.incr (Metrics.counter "test.probe");
  match List.assoc_opt "test.probe" (Metrics.snapshot ()) with
  | Some (Metrics.Counter_v v) -> Alcotest.(check int) "fresh registration" 1 v
  | _ -> Alcotest.fail "name cannot be reused after remove"

let test_sorted_rendering =
  isolated @@ fun () ->
  (* register deliberately out of order *)
  List.iter (fun n -> Metrics.incr (Metrics.counter n)) [ "z.last"; "a.first"; "m.mid" ];
  Metrics.set (Metrics.gauge "b.gauge") 1.5;
  let snap = Metrics.snapshot () in
  (* instrument order is sorted by name (histograms expand to a
     count/sum/max triplet in place, so only base names are compared) *)
  let keys = List.map fst (Metrics.flatten snap) in
  let ours = List.filter (fun k -> List.mem k [ "a.first"; "b.gauge"; "m.mid"; "z.last" ]) keys in
  Alcotest.(check (list string)) "flatten sorted by name"
    [ "a.first"; "b.gauge"; "m.mid"; "z.last" ] ours;
  (* and the rendering is deterministic call to call *)
  Alcotest.(check (list string)) "flatten deterministic" keys
    (List.map fst (Metrics.flatten snap));
  let json = Metrics.to_json snap in
  validate_json ~what:"sorted metrics json" json;
  (* keys appear in sorted order in the serialised text too *)
  let offset k =
    let needle = "\"" ^ k ^ "\"" in
    let rec find i =
      if i + String.length needle > String.length json then
        Alcotest.failf "key %s missing from json" k
      else if String.sub json i (String.length needle) = needle then i
      else find (i + 1)
    in
    find 0
  in
  Alcotest.(check bool) "json key order deterministic" true
    (offset "a.first" < offset "b.gauge"
    && offset "b.gauge" < offset "m.mid"
    && offset "m.mid" < offset "z.last")

let test_diff =
  isolated @@ fun () ->
  let c = Metrics.counter "test.d" in
  let g = Metrics.gauge "test.g" in
  Metrics.add c 10;
  Metrics.set g 5.0;
  let before = Metrics.snapshot () in
  Metrics.add c 7;
  Metrics.set g 2.0;
  let d = Metrics.diff ~before ~after:(Metrics.snapshot ()) in
  (match List.assoc "test.d" d with
  | Metrics.Counter_v v -> Alcotest.(check int) "counter delta" 7 v
  | _ -> Alcotest.fail "diff lost counter");
  match List.assoc "test.g" d with
  | Metrics.Gauge_v v -> Alcotest.(check (float 1e-9)) "gauge keeps after" 2.0 v
  | _ -> Alcotest.fail "diff lost gauge"

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

(* Replay the event list against a stack: every End must match the
   innermost open Begin, and nothing may stay open. *)
let check_balanced events =
  let stack = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.phase with
      | Trace.Begin -> stack := e.Trace.name :: !stack
      | Trace.End -> (
          match !stack with
          | top :: rest ->
              Alcotest.(check string) "end matches innermost begin" top e.Trace.name;
              stack := rest
          | [] -> Alcotest.failf "end %s without begin" e.Trace.name))
    events;
  Alcotest.(check (list string)) "all spans closed" [] !stack

let test_span_nesting =
  isolated @@ fun () ->
  Trace.set_enabled true;
  Trace.with_span "outer" (fun () ->
      Trace.with_span "inner" (fun () -> ());
      Trace.with_span "inner2" (fun () -> ()));
  (try Trace.with_span "raises" (fun () -> failwith "boom") with Failure _ -> ());
  let events = Trace.events () in
  Alcotest.(check int) "8 events" 8 (List.length events);
  check_balanced events;
  Alcotest.(check int) "depth back to 0" 0 (Trace.depth ());
  let ts = List.map (fun (e : Trace.event) -> e.Trace.ts_ns) events in
  Alcotest.(check bool) "timestamps ordered" true (List.sort compare ts = ts)

let test_ring_wrap =
  isolated @@ fun () ->
  Trace.configure ~capacity:4 ();
  Trace.set_enabled true;
  for i = 1 to 5 do
    Trace.with_span (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  let events = Trace.events () in
  Alcotest.(check int) "ring holds capacity" 4 (List.length events);
  Alcotest.(check int) "drops counted" 6 (Trace.dropped_events ());
  (* the survivors are the newest events *)
  match List.rev events with
  | last :: _ -> Alcotest.(check string) "newest survives" "s5" last.Trace.name
  | [] -> Alcotest.fail "empty ring"

(* After a ring wrap the Chrome export's metadata must carry the drop
   count, so a consumer can detect truncation from the file alone. *)
let test_chrome_drop_metadata =
  isolated @@ fun () ->
  Trace.configure ~capacity:4 ();
  Trace.set_enabled true;
  for i = 1 to 5 do
    Trace.with_span (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  Trace.set_enabled false;
  Alcotest.(check int) "drops happened" 6 (Trace.dropped_events ());
  let path = Filename.temp_file "qdt_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.export_chrome path;
      let src = read_file path in
      validate_json ~what:"wrapped chrome trace" src;
      match Qdt_obs.Json.parse src with
      | Error e -> Alcotest.failf "chrome export does not parse: %s" e
      | Ok j -> (
          match Qdt_obs.Json.member "metadata" j with
          | None -> Alcotest.fail "no top-level metadata object"
          | Some meta ->
              (match
                 Option.bind (Qdt_obs.Json.member "dropped_events" meta)
                   Qdt_obs.Json.to_number
               with
              | Some d -> Alcotest.(check (float 0.0)) "dropped_events recorded" 6.0 d
              | None -> Alcotest.fail "metadata lacks dropped_events");
              (match
                 Option.bind (Qdt_obs.Json.member "recorded_events" meta)
                   Qdt_obs.Json.to_number
               with
              | Some r -> Alcotest.(check (float 0.0)) "recorded_events recorded" 4.0 r
              | None -> Alcotest.fail "metadata lacks recorded_events")))

(* Same contract for the JSONL exporter: its leading metadata line must
   carry the drop count (PR 5 added it to the Chrome export only). *)
let test_jsonl_drop_metadata =
  isolated @@ fun () ->
  Trace.configure ~capacity:4 ();
  Trace.set_enabled true;
  for i = 1 to 5 do
    Trace.with_span (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  Trace.set_enabled false;
  let path = Filename.temp_file "qdt_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.export_jsonl path;
      let lines =
        String.split_on_char '\n' (read_file path)
        |> List.filter (fun l -> String.trim l <> "")
      in
      Alcotest.(check int) "metadata + events" 5 (List.length lines);
      List.iter (fun l -> validate_json ~what:"jsonl line" l) lines;
      match lines with
      | first :: _ -> (
          match Qdt_obs.Json.parse first with
          | Error e -> Alcotest.failf "metadata line does not parse: %s" e
          | Ok j -> (
              match Qdt_obs.Json.member "metadata" j with
              | None -> Alcotest.fail "first line lacks metadata object"
              | Some meta ->
                  let num name =
                    Option.bind (Qdt_obs.Json.member name meta) Qdt_obs.Json.to_number
                  in
                  Alcotest.(check (option (float 0.0))) "dropped_events" (Some 6.0)
                    (num "dropped_events");
                  Alcotest.(check (option (float 0.0))) "recorded_events" (Some 4.0)
                    (num "recorded_events")))
      | [] -> Alcotest.fail "empty jsonl export")

(* ------------------------------------------------------------------ *)
(* Labeled metrics                                                      *)
(* ------------------------------------------------------------------ *)

let test_labeled_registration =
  isolated @@ fun () ->
  (* label order does not matter: both spellings resolve to one series *)
  let a = Metrics.counter_with ~labels:[ ("b", "2"); ("a", "1") ] "test.lab" in
  let b = Metrics.counter_with ~labels:[ ("a", "1"); ("b", "2") ] "test.lab" in
  Metrics.incr a;
  Metrics.incr b;
  let key = Metrics.encode_series "test.lab" [ ("b", "2"); ("a", "1") ] in
  Alcotest.(check string) "canonical key" "test.lab{a=\"1\",b=\"2\"}" key;
  (match List.assoc_opt key (Metrics.snapshot ()) with
  | Some (Metrics.Counter_v v) -> Alcotest.(check int) "one shared cell" 2 v
  | _ -> Alcotest.fail "labeled series missing from snapshot");
  (* distinct label values are distinct series; base name may coexist *)
  Metrics.incr (Metrics.counter_with ~labels:[ ("a", "other") ] "test.lab");
  Metrics.incr (Metrics.counter "test.lab");
  let snap = Metrics.snapshot () in
  Alcotest.(check bool) "other series separate" true
    (List.assoc_opt "test.lab{a=\"other\"}" snap = Some (Metrics.Counter_v 1));
  Alcotest.(check bool) "unlabeled separate" true
    (List.assoc_opt "test.lab" snap = Some (Metrics.Counter_v 1));
  (* malformed / duplicate label names are rejected *)
  (try
     ignore (Metrics.counter_with ~labels:[ ("bad name", "v") ] "test.lab");
     Alcotest.fail "invalid label name accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Metrics.counter_with ~labels:[ ("a", "1"); ("a", "2") ] "test.lab");
     Alcotest.fail "duplicate label name accepted"
   with Invalid_argument _ -> ());
  (* kind mismatch on the same series key is rejected *)
  try
    ignore (Metrics.gauge_with ~labels:[ ("a", "1"); ("b", "2") ] "test.lab");
    Alcotest.fail "kind mismatch accepted"
  with Invalid_argument _ -> ()

(* Two raw domains hammering one labeled cell: increments never lost
   (the labeled path shares the Atomic-cell domain-safety of PR 7). *)
let test_labeled_merge_domains =
  isolated @@ fun () ->
  let c = Metrics.counter_with ~labels:[ ("backend", "dd") ] "test.merge" in
  let n = 50_000 in
  let worker () =
    for _ = 1 to n do
      Metrics.incr c
    done
  in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  worker ();
  Domain.join d1;
  Domain.join d2;
  match
    List.assoc_opt
      (Metrics.encode_series "test.merge" [ ("backend", "dd") ])
      (Metrics.snapshot ())
  with
  | Some (Metrics.Counter_v v) -> Alcotest.(check int) "no lost updates" (3 * n) v
  | _ -> Alcotest.fail "merged series missing"

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                                *)
(* ------------------------------------------------------------------ *)

(* Line-level grammar check: every non-empty line is either a comment or
   [name(\{labels\})? value] with a legal metric name. *)
let check_prometheus_grammar ~what text =
  let name_ok s =
    s <> ""
    && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
    && String.for_all
         (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
         s
  in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line = "" then ()
         else if String.length line >= 2 && String.sub line 0 2 = "# " then begin
           match String.split_on_char ' ' line with
           | "#" :: "TYPE" :: name :: [ kind ] ->
               if not (name_ok name) then
                 Alcotest.failf "%s: bad TYPE name %S" what name;
               if not (List.mem kind [ "counter"; "gauge"; "histogram"; "untyped" ])
               then Alcotest.failf "%s: bad TYPE kind %S" what kind
           | _ -> Alcotest.failf "%s: malformed comment %S" what line
         end
         else begin
           let metric, rest =
             match String.index_opt line '{' with
             | Some i -> (
                 match String.index_opt line '}' with
                 | Some j when j > i ->
                     ( String.sub line 0 i,
                       String.trim (String.sub line (j + 1) (String.length line - j - 1)) )
                 | _ -> Alcotest.failf "%s: unbalanced braces in %S" what line)
             | None -> (
                 match String.index_opt line ' ' with
                 | Some i ->
                     ( String.sub line 0 i,
                       String.trim (String.sub line i (String.length line - i)) )
                 | None -> Alcotest.failf "%s: no value in %S" what line)
           in
           if not (name_ok metric) then
             Alcotest.failf "%s: bad metric name %S in %S" what metric line;
           if rest = "" || float_of_string_opt rest = None then
             Alcotest.failf "%s: bad sample value %S in %S" what rest line
         end)

let test_render_prometheus =
  isolated @@ fun () ->
  Metrics.incr (Metrics.counter_with ~labels:[ ("backend", "dd") ] "test.prom.runs");
  Metrics.add (Metrics.counter_with ~labels:[ ("backend", "mps") ] "test.prom.runs") 3;
  Metrics.set (Metrics.gauge "test.prom-gauge") 2.5;
  let h = Metrics.histogram "test.prom.lat" in
  List.iter (Metrics.observe h) [ 1; 3; 3; 100 ];
  let out = Metrics.render_prometheus (Metrics.snapshot ()) in
  check_prometheus_grammar ~what:"render_prometheus" out;
  let has needle =
    let nl = String.length needle and n = String.length out in
    let rec go i = i + nl <= n && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  let expect needle =
    if not (has needle) then
      Alcotest.failf "missing %S in rendering:\n%s" needle out
  in
  (* dots sanitised, labels preserved, families typed *)
  expect "# TYPE test_prom_runs counter";
  expect "test_prom_runs{backend=\"dd\"} 1";
  expect "test_prom_runs{backend=\"mps\"} 3";
  expect "# TYPE test_prom_gauge gauge";
  expect "test_prom_gauge 2.5";
  expect "# TYPE test_prom_lat histogram";
  (* buckets are cumulative with closed integer upper bounds *)
  expect "test_prom_lat_bucket{le=\"1\"} 1";
  expect "test_prom_lat_bucket{le=\"3\"} 3";
  expect "test_prom_lat_bucket{le=\"+Inf\"} 4";
  expect "test_prom_lat_sum 107";
  expect "test_prom_lat_count 4"

(* Mid-circuit measurement goes through Sim.run (the CLI's final-state
   path strips measures), so drive it directly and check the span mix. *)
let test_measure_span =
  isolated @@ fun () ->
  Trace.set_enabled true;
  let c = Qdt_circuit.Circuit.measure_all Generators.bell in
  let _ = Qdt_dd.Sim.run ~seed:7 c in
  let events = Trace.events () in
  check_balanced events;
  let names =
    List.sort_uniq compare
      (List.map (fun (e : Trace.event) -> e.Trace.name) events)
  in
  Alcotest.(check bool) "gate span present" true (List.mem "dd.gate" names);
  Alcotest.(check bool) "measure span present" true (List.mem "dd.measure" names)

(* ------------------------------------------------------------------ *)
(* Exporters: Bell circuit on every registered backend                  *)
(* ------------------------------------------------------------------ *)

let test_exporters_every_backend =
  isolated @@ fun () ->
  let bell = Generators.bell in
  List.iter
    (fun (module B : Qdt.Backend.BACKEND) ->
      Trace.configure ();
      Trace.set_enabled true;
      (* Exercise whatever Bell operations the backend offers (e.g. the
         tensor-network backend computes quantities but cannot sample). *)
      let ran = ref 0 in
      (match B.sample ~shots:20 bell with Ok _ -> incr ran | Error _ -> ());
      (match B.simulate bell with Ok _ -> incr ran | Error _ -> ());
      (match B.expectation_z bell 0 with Ok _ -> incr ran | Error _ -> ());
      if !ran = 0 then Alcotest.failf "backend %s ran no Bell operation" B.name;
      Trace.set_enabled false;
      if Trace.events () = [] then Alcotest.failf "backend %s recorded no spans" B.name;
      check_balanced (Trace.events ());
      let chrome = Filename.temp_file "qdt_trace" ".json" in
      let jsonl = Filename.temp_file "qdt_trace" ".jsonl" in
      Fun.protect
        ~finally:(fun () ->
          Sys.remove chrome;
          Sys.remove jsonl)
        (fun () ->
          Trace.export_chrome chrome;
          Trace.export_jsonl jsonl;
          validate_json ~what:(B.name ^ " chrome trace") (read_file chrome);
          String.split_on_char '\n' (read_file jsonl)
          |> List.iter (fun line ->
                 if String.trim line <> "" then
                   validate_json ~what:(B.name ^ " jsonl line") line));
      Trace.clear ())
    (Qdt.Registry.all ());
  (* the metrics JSON dump is valid too *)
  validate_json ~what:"metrics json" (Metrics.to_json (Metrics.snapshot ()))

(* ------------------------------------------------------------------ *)
(* Percentile estimation from log2 buckets (ISSUE 10 satellite 1)      *)
(* ------------------------------------------------------------------ *)

let histogram_value name =
  match List.assoc_opt name (Metrics.snapshot ()) with
  | Some (Metrics.Histogram_v _ as v) -> v
  | _ -> Alcotest.failf "histogram %s missing from snapshot" name

let test_estimate_percentile_uniform =
  isolated @@ fun () ->
  let h = Metrics.histogram "test.pct.uniform" in
  for v = 1 to 1024 do
    Metrics.observe h v
  done;
  let v = histogram_value "test.pct.uniform" in
  (* Uniform 1..1024: true p50 = 512.5, true p99 = 1014.  Nearest rank
     lands in the [512, 1024) bucket; interpolation pins both within a
     hair of the exact answer. *)
  Alcotest.(check int) "p50" 513 (Metrics.estimate_percentile v 50.0);
  Alcotest.(check int) "p99" 1014 (Metrics.estimate_percentile v 99.0);
  Alcotest.(check int) "p100 = max" 1024 (Metrics.estimate_percentile v 100.0);
  let p1 = Metrics.estimate_percentile v 1.0 in
  if p1 < 1 || p1 > 16 then Alcotest.failf "p1 = %d out of low range" p1;
  Metrics.remove "test.pct.uniform"

let test_estimate_percentile_constant =
  isolated @@ fun () ->
  let h = Metrics.histogram "test.pct.constant" in
  for _ = 1 to 1000 do
    Metrics.observe h 100
  done;
  let v = histogram_value "test.pct.constant" in
  (* All mass in the [64, 128) bucket with tracked max 100: estimates
     interpolate inside [64, 100] and never exceed an observed value —
     precision is the bucket width, which is the documented contract. *)
  let p50 = Metrics.estimate_percentile v 50.0 in
  if p50 < 64 || p50 > 100 then Alcotest.failf "p50 = %d outside bucket" p50;
  Alcotest.(check int) "p99 clamps to max" 100
    (Metrics.estimate_percentile v 99.0);
  Metrics.remove "test.pct.constant"

let test_estimate_percentile_errors =
  isolated @@ fun () ->
  let h = Metrics.histogram "test.pct.errors" in
  let v () = histogram_value "test.pct.errors" in
  let expect_invalid what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s should raise Invalid_argument" what
  in
  expect_invalid "empty histogram" (fun () ->
      Metrics.estimate_percentile (v ()) 50.0);
  Metrics.observe h 7;
  expect_invalid "p out of range" (fun () ->
      Metrics.estimate_percentile (v ()) 101.0);
  expect_invalid "negative p" (fun () ->
      Metrics.estimate_percentile (v ()) (-1.0));
  expect_invalid "counter value" (fun () ->
      Metrics.estimate_percentile (Metrics.Counter_v 3) 50.0);
  Alcotest.(check int) "single observation" 7
    (Metrics.estimate_percentile (v ()) 50.0);
  Metrics.remove "test.pct.errors"

(* ------------------------------------------------------------------ *)
(* Prometheus exposition parser (Qdt_obs.Prom)                         *)
(* ------------------------------------------------------------------ *)

module Prom = Qdt_obs.Prom

let test_prom_roundtrip =
  isolated @@ fun () ->
  let c = Metrics.counter_with ~labels:[ ("backend", "d\"d\n") ] "test.promrt.runs" in
  Metrics.add c 5;
  Metrics.set (Metrics.gauge "test.promrt.depth") 3.5;
  let h = Metrics.histogram "test.promrt.lat" in
  List.iter (Metrics.observe h) [ 1; 5; 900 ];
  let text = Metrics.render_prometheus (Metrics.snapshot ()) in
  (match Prom.parse text with
  | Error e -> Alcotest.failf "renderer output rejected: %s" e
  | Ok fams ->
      (match Prom.find "test_promrt_runs" fams with
      | None -> Alcotest.fail "counter family missing"
      | Some f ->
          Alcotest.(check string) "kind" "counter" f.Prom.kind;
          Alcotest.(check (float 0.0)) "value" 5.0 (Prom.total f);
          (match f.Prom.samples with
          | [ s ] ->
              (* The escaped label value round-trips through the parser. *)
              Alcotest.(check (list (pair string string)))
                "labels" [ ("backend", "d\"d\n") ] s.Prom.labels
          | _ -> Alcotest.fail "expected one counter sample"));
      (match Prom.find "test_promrt_lat" fams with
      | None -> Alcotest.fail "histogram family missing"
      | Some f ->
          Alcotest.(check string) "kind" "histogram" f.Prom.kind;
          Alcotest.(check (float 0.0)) "count" 3.0 (Prom.total f));
      match Prom.find "test_promrt_depth" fams with
      | Some { Prom.kind = "gauge"; _ } -> ()
      | _ -> Alcotest.fail "gauge family missing");
  Metrics.remove "test.promrt.depth";
  Metrics.remove "test.promrt.lat";
  Metrics.remove (Metrics.encode_series "test.promrt.runs" [ ("backend", "d\"d\n") ])

let test_prom_rejects =
  isolated @@ fun () ->
  let reject what text =
    match Prom.parse text with
    | Ok _ -> Alcotest.failf "%s should be rejected" what
    | Error e ->
        if not (String.length e > 5 && String.sub e 0 5 = "line ") then
          Alcotest.failf "%s: error %S does not name a line" what e
  in
  reject "sample before TYPE" "foo 1\n";
  reject "sample outside family" "# TYPE a counter\nb 1\n";
  reject "bad value" "# TYPE a counter\na one\n";
  reject "unterminated label" "# TYPE a counter\na{x=\"y 1\n";
  reject "bad kind" "# TYPE a widget\na 1\n";
  (match Prom.parse "# TYPE up gauge\nup{job=\"qdt\"} 1 1700000000000\n" with
  | Ok [ { Prom.samples = [ { Prom.value = 1.0; _ } ]; _ } ] -> ()
  | Ok _ -> Alcotest.fail "timestamped sample parsed oddly"
  | Error e -> Alcotest.failf "timestamped sample rejected: %s" e);
  match Prom.parse "# TYPE x gauge\nx NaN\n" with
  | Ok [ { Prom.samples = [ s ]; _ } ] ->
      Alcotest.(check bool) "NaN value" true (Float.is_nan s.Prom.value)
  | Ok _ -> Alcotest.fail "NaN sample parsed oddly"
  | Error e -> Alcotest.failf "NaN rejected: %s" e

let () =
  Alcotest.run "qdt_obs"
    [
      ("clock", [ Alcotest.test_case "monotone" `Quick test_clock_monotone ]);
      ( "metrics",
        [
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram observe" `Quick test_histogram_observe;
          Alcotest.test_case "counter reset" `Quick test_counter_reset;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "sorted rendering" `Quick test_sorted_rendering;
          Alcotest.test_case "snapshot diff" `Quick test_diff;
        ] );
      ( "labels",
        [
          Alcotest.test_case "labeled registration" `Quick test_labeled_registration;
          Alcotest.test_case "labeled merge across domains" `Quick
            test_labeled_merge_domains;
        ] );
      ( "prometheus",
        [ Alcotest.test_case "exposition format" `Quick test_render_prometheus ] );
      ( "percentile",
        [
          Alcotest.test_case "uniform distribution" `Quick
            test_estimate_percentile_uniform;
          Alcotest.test_case "constant distribution" `Quick
            test_estimate_percentile_constant;
          Alcotest.test_case "edge cases" `Quick test_estimate_percentile_errors;
        ] );
      ( "prom parser",
        [
          Alcotest.test_case "round-trip" `Quick test_prom_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_prom_rejects;
        ] );
      ( "trace",
        [
          Alcotest.test_case "balanced nesting" `Quick test_span_nesting;
          Alcotest.test_case "ring wrap" `Quick test_ring_wrap;
          Alcotest.test_case "chrome export drop metadata" `Quick test_chrome_drop_metadata;
          Alcotest.test_case "jsonl export drop metadata" `Quick test_jsonl_drop_metadata;
          Alcotest.test_case "mid-circuit measure span" `Quick test_measure_span;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "bell on every backend" `Quick test_exporters_every_backend;
        ] );
    ]
