(* Tests for the backend layer: registry contents, capability queries,
   typed unsupported-operation errors, the Auto dispatcher's routing, the
   unified stats record, and shim consistency of the old Qdt API. *)

open Qdt_circuit
module Backend = Qdt.Backend
module Registry = Qdt.Registry
module Vec = Qdt_linalg.Vec

let get name =
  match Registry.find name with
  | Some m -> m
  | None -> Alcotest.failf "backend %s not registered" name

let nn_chain n =
  let c = ref (Circuit.empty n) in
  for q = 0 to n - 1 do
    c := Circuit.ry 0.3 q !c
  done;
  for q = 0 to n - 2 do
    c := Circuit.cx q (q + 1) !c
  done;
  !c

let t_heavy = Generators.random_clifford_t ~seed:3 ~gates:100 ~t_fraction:0.3 5

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_contents () =
  let names = Registry.names () in
  List.iter
    (fun expected ->
      if not (List.mem expected names) then Alcotest.failf "%s missing" expected)
    [ "arrays"; "decision-diagrams"; "tensor-network"; "mps"; "stabilizer"; "auto" ];
  Alcotest.(check int) "six backends" 6 (List.length (Registry.all ()));
  Alcotest.(check bool) "unknown name" true (Registry.find "qubit-frobnicator" = None)

let test_capability_queries () =
  let caps name = Option.get (Registry.capabilities_of name) in
  let stab = caps "stabilizer" in
  Alcotest.(check bool) "stabilizer clifford-only" true stab.Backend.clifford_only;
  Alcotest.(check bool) "stabilizer no state" false stab.Backend.full_state;
  Alcotest.(check bool) "stabilizer no amplitude" false
    (Backend.supports stab Backend.Amplitude);
  Alcotest.(check bool) "stabilizer samples" true (Backend.supports stab Backend.Sample);
  let tn = caps "tensor-network" in
  Alcotest.(check bool) "tn no sampling" false (Backend.supports tn Backend.Sample);
  Alcotest.(check bool) "tn no measurements" false tn.Backend.supports_nonunitary;
  let arrays = caps "arrays" in
  Alcotest.(check bool) "arrays bounded" true (arrays.Backend.max_qubits <> None);
  List.iter
    (fun (module B : Backend.BACKEND) ->
      Alcotest.(check bool)
        (B.name ^ " expectation-z")
        true
        (Backend.supports B.capabilities Backend.Expectation_z))
    (Registry.all ())

(* ------------------------------------------------------------------ *)
(* Typed errors instead of exceptions                                  *)
(* ------------------------------------------------------------------ *)

let expect_error name = function
  | Ok _ -> Alcotest.failf "%s: expected a typed error" name
  | Error (e : Backend.error) ->
      if e.Backend.reason = "" then Alcotest.failf "%s: empty reason" name

let test_typed_errors () =
  let bell = Generators.bell in
  let (module Tn : Backend.BACKEND) = get "tensor-network" in
  expect_error "tn sample" (Tn.sample ~shots:10 bell);
  let (module Stab : Backend.BACKEND) = get "stabilizer" in
  expect_error "stabilizer simulate" (Stab.simulate bell);
  expect_error "stabilizer amplitude" (Stab.amplitude bell 0);
  expect_error "stabilizer non-clifford" (Stab.sample ~shots:10 t_heavy);
  let measured = Circuit.(empty 2 ~clbits:2 |> h 0 |> measure ~qubit:0 ~clbit:0) in
  let (module Mps : Backend.BACKEND) = get "mps" in
  expect_error "mps measurements" (Mps.sample ~shots:10 measured);
  let (module Arrays : Backend.BACKEND) = get "arrays" in
  expect_error "arrays full state of measured circuit" (Arrays.simulate measured);
  expect_error "arrays too wide"
    (Arrays.simulate (Circuit.empty 30 |> Circuit.h 0));
  (* ...but the same measured circuit is samplable where supported *)
  (match Arrays.sample ~shots:5 measured with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "arrays sample measured: %s" (Backend.error_to_string e))

(* ------------------------------------------------------------------ *)
(* Auto dispatcher routing                                             *)
(* ------------------------------------------------------------------ *)

let choice op c =
  let (module B : Backend.BACKEND), _reason = Qdt.Auto.choose ~op c in
  B.name

let test_auto_routing () =
  let clifford = Generators.random_clifford ~seed:5 ~gates:80 6 in
  Alcotest.(check string) "clifford -> stabilizer" "stabilizer"
    (choice Backend.Sample clifford);
  Alcotest.(check string) "low entanglement -> mps" "mps"
    (choice Backend.Expectation_z (nn_chain 16));
  Alcotest.(check string) "t-heavy -> dd" "decision-diagrams"
    (choice Backend.Full_state t_heavy);
  Alcotest.(check string) "generic small -> arrays" "arrays"
    (choice Backend.Full_state (Generators.qft 6));
  (* capability-aware fallthrough: stabilizer cannot produce the state *)
  Alcotest.(check bool) "clifford full state avoids stabilizer" true
    (choice Backend.Full_state clifford <> "stabilizer")

let test_auto_results_and_note () =
  let (module Auto : Backend.BACKEND) = get "auto" in
  let c = Generators.ghz 5 in
  match Auto.sample ~seed:1 ~shots:200 c with
  | Error e -> Alcotest.failf "auto sample: %s" (Backend.error_to_string e)
  | Ok (counts, stats) ->
      Alcotest.(check string) "ghz is clifford" "stabilizer" stats.Backend.backend;
      Alcotest.(check bool) "choice logged" true (stats.Backend.note <> None);
      Alcotest.(check bool) "tableau telemetry" true (stats.Backend.tableau_bytes <> None);
      let total = List.fold_left (fun acc (_, n) -> acc + n) 0 counts in
      Alcotest.(check int) "all shots" 200 total;
      List.iter
        (fun (k, _) ->
          if k <> 0 && k <> 31 then Alcotest.failf "ghz outcome %d" k)
        counts

(* ------------------------------------------------------------------ *)
(* Unified stats                                                       *)
(* ------------------------------------------------------------------ *)

let test_dd_telemetry () =
  let (module Dd : Backend.BACKEND) = get "decision-diagrams" in
  match Dd.simulate (Generators.qft 6) with
  | Error e -> Alcotest.failf "dd simulate: %s" (Backend.error_to_string e)
  | Ok (_, stats) -> (
      match stats.Backend.dd with
      | None -> Alcotest.fail "dd stats missing"
      | Some d ->
          Alcotest.(check bool) "peak >= final" true
            (d.Backend.peak_nodes >= d.Backend.final_nodes);
          Alcotest.(check bool) "peak > 0" true (d.Backend.peak_nodes > 0);
          Alcotest.(check bool) "unique table populated" true
            (d.Backend.unique_table_size > 0);
          Alcotest.(check bool) "hit rates in [0,1]" true
            (d.Backend.unique_hit_rate >= 0.0
            && d.Backend.unique_hit_rate <= 1.0
            && d.Backend.compute_hit_rate >= 0.0
            && d.Backend.compute_hit_rate <= 1.0))

let test_mps_telemetry () =
  let (module Mps : Backend.BACKEND) = get "mps" in
  match Mps.simulate (Generators.ghz 8) with
  | Error e -> Alcotest.failf "mps simulate: %s" (Backend.error_to_string e)
  | Ok (_, stats) -> (
      match stats.Backend.mps with
      | None -> Alcotest.fail "mps stats missing"
      | Some m ->
          Alcotest.(check int) "ghz bond dimension" 2 m.Backend.max_bond_dim;
          Alcotest.(check (float 1e-12)) "no truncation" 0.0 m.Backend.truncation_error)

(* ------------------------------------------------------------------ *)
(* Shim consistency and cross-backend agreement                        *)
(* ------------------------------------------------------------------ *)

let test_shim_matches_registry () =
  let c = Generators.qft 5 in
  let via_shim = Qdt.simulate ~backend:Qdt.Decision_diagrams c in
  let (module Dd : Backend.BACKEND) = get "decision-diagrams" in
  let via_registry = match Dd.simulate c with Ok (v, _) -> v | Error _ -> assert false in
  Alcotest.(check bool) "identical states" true
    (Vec.approx_equal ~eps:1e-12 via_shim via_registry);
  (* the shim still raises on unsupported combinations *)
  (match Qdt.simulate ~backend:Qdt.Stabilizer_backend c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "stabilizer simulate should raise through the shim");
  Alcotest.(check string) "auto variant registered" "auto"
    (Qdt.backend_name Qdt.Auto_backend)

let test_backends_agree () =
  let c = Generators.w_state 6 in
  let reference = Qdt.simulate ~backend:Qdt.Arrays_backend c in
  List.iter
    (fun (module B : Backend.BACKEND) ->
      match B.simulate c with
      | Ok (state, _) ->
          if not (Vec.approx_equal ~eps:1e-7 reference state) then
            Alcotest.failf "%s disagrees on w(6)" B.name
      | Error _ -> () (* stabilizer: no state access *))
    (Registry.all ())

let test_seeded_determinism () =
  (* mid-circuit measurement: same seed, same expectation (the seed-drop
     bug made the stabilizer arm nondeterministic) *)
  let c =
    Circuit.(
      empty 2 ~clbits:2 |> h 0 |> measure ~qubit:0 ~clbit:0 |> cx 0 1)
  in
  let v1 = Qdt.expectation_z ~backend:Qdt.Stabilizer_backend ~seed:7 c 1 in
  let v2 = Qdt.expectation_z ~backend:Qdt.Stabilizer_backend ~seed:7 c 1 in
  Alcotest.(check (float 0.0)) "same seed same result" v1 v2;
  Alcotest.(check bool) "collapsed" true (Float.abs v1 = 1.0)

let () =
  Alcotest.run "qdt_backend"
    [
      ( "registry",
        [
          Alcotest.test_case "contents" `Quick test_registry_contents;
          Alcotest.test_case "capabilities" `Quick test_capability_queries;
        ] );
      ("errors", [ Alcotest.test_case "typed unsupported" `Quick test_typed_errors ]);
      ( "auto",
        [
          Alcotest.test_case "routing" `Quick test_auto_routing;
          Alcotest.test_case "results + note" `Quick test_auto_results_and_note;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "dd" `Quick test_dd_telemetry;
          Alcotest.test_case "mps" `Quick test_mps_telemetry;
        ] );
      ( "shim",
        [
          Alcotest.test_case "matches registry" `Quick test_shim_matches_registry;
          Alcotest.test_case "backends agree" `Quick test_backends_agree;
          Alcotest.test_case "seeded determinism" `Quick test_seeded_determinism;
        ] );
    ]
