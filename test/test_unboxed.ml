(* Cross-validation of the unboxed numeric substrate against the retained
   boxed reference implementations (test/ref): randomized circuits through
   both statevector engines, SVD factor checks, MPS fidelity, and unit
   checks for the new in-place kernels. *)

open Qdt_circuit
module Cx = Qdt_linalg.Cx
module Vec = Qdt_linalg.Vec
module Mat = Qdt_linalg.Mat
module Svd = Qdt_linalg.Svd
module Sv = Qdt_arraysim.Statevector
module Ub = Qdt_arraysim.Unitary_builder
module Mps = Qdt_tensornet.Mps
module Vec_ref = Qdt_ref.Vec_ref
module Mat_ref = Qdt_ref.Mat_ref
module Svd_ref = Qdt_ref.Svd_ref
module Sv_ref = Qdt_ref.Sv_ref
module Mps_ref = Qdt_ref.Mps_ref

let cx = Alcotest.testable Cx.pp (Cx.approx_equal ~eps:1e-9)

let random_cx rng =
  { Cx.re = Random.State.float rng 2.0 -. 1.0; im = Random.State.float rng 2.0 -. 1.0 }

(* Unitary circuits across 3..8 qubits, mixing the gate families. *)
let unitary_workloads =
  List.concat_map
    (fun n ->
      [
        (Printf.sprintf "random%d" n, Generators.random_circuit ~seed:(40 + n) ~depth:4 n);
        ( Printf.sprintf "clifford+t%d" n,
          Generators.random_clifford_t ~seed:(50 + n) ~gates:(30 * n) ~t_fraction:0.25 n );
        (Printf.sprintf "qft%d" n, Generators.qft n);
      ])
    [ 3; 4; 5; 6; 7; 8 ]

let test_sv_matches_ref () =
  List.iter
    (fun (name, c) ->
      let got = Sv.run_unitary c in
      let expect = Sv_ref.run_unitary c in
      let dim = 1 lsl Circuit.num_qubits c in
      for k = 0 to dim - 1 do
        let a = Sv.amplitude got k and b = Sv_ref.amplitude expect k in
        if Cx.norm (Cx.sub a b) > 1e-9 then
          Alcotest.failf "%s: amplitude %d differs: got %s, want %s" name k
            (Format.asprintf "%a" Cx.pp a)
            (Format.asprintf "%a" Cx.pp b)
      done)
    unitary_workloads

let test_sv_measurement_matches_ref () =
  (* Both engines consume the RNG identically, so seeded runs with
     mid-circuit measurement and reset must agree bit for bit. *)
  List.iter
    (fun seed ->
      let c =
        Circuit.empty ~clbits:4 4
        |> Circuit.add (Circuit.Apply { gate = Gate.H; controls = []; target = 0 })
        |> Circuit.add (Circuit.Apply { gate = Gate.H; controls = []; target = 1 })
        |> Circuit.add (Circuit.Apply { gate = Gate.X; controls = [ 0 ]; target = 2 })
        |> Circuit.add (Circuit.Measure { qubit = 0; clbit = 0 })
        |> Circuit.add (Circuit.Reset 1)
        |> Circuit.add (Circuit.Apply { gate = Gate.H; controls = []; target = 3 })
        |> Circuit.add (Circuit.Measure { qubit = 3; clbit = 1 })
      in
      let sv, clbits = Sv.run ~seed c in
      let sv', clbits' = Sv_ref.run ~seed c in
      Alcotest.(check (array int)) "clbits" clbits' clbits;
      for k = 0 to 15 do
        Alcotest.check cx "amp" (Sv_ref.amplitude sv' k) (Sv.amplitude sv k)
      done)
    [ 0; 1; 2; 3; 17 ]

let test_sample_matches_ref_probabilities () =
  let c = Generators.random_circuit ~seed:9 ~depth:4 5 in
  let sv = Sv.run_unitary c in
  let probs = Sv.probabilities sv in
  let probs' = Sv_ref.probabilities (Sv_ref.run_unitary c) in
  Array.iteri
    (fun k p -> Alcotest.(check (float 1e-9)) "prob" probs'.(k) p)
    probs;
  (* scratch gauge: sampling must have materialised the probability table *)
  let _ = Sv.sample sv ~shots:50 in
  Alcotest.(check int) "scratch bytes" (8 * (1 lsl 5)) (Sv.scratch_bytes sv)

let random_mat rng rows cols = Mat.init rows cols (fun _ _ -> random_cx rng)

let test_svd_matches_ref () =
  let rng = Random.State.make [| 71 |] in
  List.iter
    (fun (rows, cols) ->
      let m = random_mat rng rows cols in
      let d = Svd.decompose m in
      (* reconstruction *)
      let r = Svd.reconstruct d in
      if Mat.frobenius_distance m r > 1e-9 then
        Alcotest.failf "%dx%d: reconstruction off by %g" rows cols
          (Mat.frobenius_distance m r);
      (* orthonormal factors *)
      let k = Array.length d.Svd.sigma in
      let gram = Mat.mul (Mat.dagger d.Svd.u) d.Svd.u in
      if not (Mat.approx_equal ~eps:1e-9 gram (Mat.identity k)) then
        Alcotest.failf "%dx%d: u columns not orthonormal" rows cols;
      let gram_v = Mat.mul d.Svd.vdag (Mat.dagger d.Svd.vdag) in
      if not (Mat.approx_equal ~eps:1e-9 gram_v (Mat.identity k)) then
        Alcotest.failf "%dx%d: vdag rows not orthonormal" rows cols;
      (* singular values agree with the boxed reference *)
      let m_ref = Mat_ref.init rows cols (fun r c -> Mat.get m r c) in
      let d_ref = Svd_ref.decompose m_ref in
      Array.iteri
        (fun i s -> Alcotest.(check (float 1e-9)) "sigma" d_ref.Svd_ref.sigma.(i) s)
        d.Svd.sigma)
    [ (2, 2); (4, 4); (6, 3); (3, 6); (8, 8); (5, 5) ]

let test_svd_truncation_matches_ref () =
  let rng = Random.State.make [| 72 |] in
  let m = random_mat rng 8 8 in
  let d = Svd.decompose m and m_ref = Mat_ref.init 8 8 (fun r c -> Mat.get m r c) in
  let d_ref = Svd_ref.decompose m_ref in
  List.iter
    (fun max_rank ->
      let t, dropped = Svd.truncate ~max_rank ~cutoff:1e-12 d in
      let t_ref, dropped_ref = Svd_ref.truncate ~max_rank ~cutoff:1e-12 d_ref in
      Alcotest.(check int) "kept rank"
        (Array.length t_ref.Svd_ref.sigma)
        (Array.length t.Svd.sigma);
      Alcotest.(check (float 1e-9)) "dropped weight" dropped_ref dropped)
    [ 1; 3; 8 ]

let test_mps_matches_ref () =
  List.iter
    (fun (name, c) ->
      let n = Circuit.num_qubits c in
      if n <= 6 then begin
        let mps = Mps.run c in
        let mps' = Mps_ref.run c in
        for k = 0 to (1 lsl n) - 1 do
          let a = Mps.amplitude mps k and b = Mps_ref.amplitude mps' k in
          if Cx.norm (Cx.sub a b) > 1e-9 then
            Alcotest.failf "%s: MPS amplitude %d differs" name k
        done;
        Alcotest.(check (float 1e-9))
          "truncation error" (Mps_ref.truncation_error mps')
          (Mps.truncation_error mps)
      end)
    unitary_workloads

let test_mps_fidelity_vs_dense () =
  (* Truncated MPS evolution: the unboxed pipeline must reach the same
     fidelity to the dense state as the boxed one, bond for bond. *)
  let c = Generators.random_circuit ~seed:33 ~depth:5 6 in
  let dense = Sv.to_vec (Sv.run_unitary c) in
  let fid v = Vec.fidelity dense v in
  let mps = Mps.run ~max_bond:4 c in
  let mps' = Mps_ref.run ~max_bond:4 c in
  let v = Mps.to_vec mps in
  let v' = Vec.init (1 lsl 6) (fun k -> Vec_ref.get (Mps_ref.to_vec mps') k) in
  Alcotest.(check (float 1e-9)) "fidelity" (fid v') (fid v);
  Alcotest.(check int) "max bond" (Mps_ref.max_bond_dim mps') (Mps.max_bond_dim mps)

let test_vec_kernels () =
  let rng = Random.State.make [| 5 |] in
  let n = 37 in
  let x = Vec.init n (fun _ -> random_cx rng) in
  let y = Vec.init n (fun _ -> random_cx rng) in
  let alpha = random_cx rng in
  (* axpy against the boxed formula *)
  let want = Vec.add y (Vec.scale alpha x) in
  let got = Vec.copy y in
  Vec.axpy ~alpha x got;
  if not (Vec.approx_equal ~eps:1e-12 want got) then Alcotest.fail "axpy mismatch";
  (* scale_inplace *)
  let got = Vec.copy x in
  Vec.scale_inplace alpha got;
  if not (Vec.approx_equal ~eps:1e-12 (Vec.scale alpha x) got) then
    Alcotest.fail "scale_inplace mismatch";
  (* dot / norm2 against the boxed reference *)
  let xr = Vec_ref.init n (fun k -> Vec.get x k) in
  let yr = Vec_ref.init n (fun k -> Vec.get y k) in
  Alcotest.check cx "dot" (Vec_ref.dot xr yr) (Vec.dot x y);
  Alcotest.(check (float 1e-12)) "norm2" (Vec_ref.dot xr xr).Cx.re (Vec.norm2 x);
  (* buffer/of_buffer are zero-copy aliases *)
  let b = Vec.buffer x in
  b.(0) <- 42.0;
  Alcotest.(check (float 0.0)) "buffer aliases" 42.0 (Vec.get x 0).Cx.re;
  let adopted = Vec.of_buffer b in
  Vec.set adopted 0 Cx.zero;
  Alcotest.(check (float 0.0)) "of_buffer aliases" 0.0 (Vec.get x 0).Cx.re

let test_mat_mul_into () =
  let rng = Random.State.make [| 6 |] in
  let a = random_mat rng 5 7 and b = random_mat rng 7 3 in
  let out = Mat.create 5 3 in
  Mat.mul_into ~out a b;
  if not (Mat.approx_equal ~eps:1e-12 (Mat.mul a b) out) then
    Alcotest.fail "mul_into mismatch";
  Alcotest.check_raises "aliased out rejected"
    (Invalid_argument "Mat.mul_into: output aliases an input") (fun () ->
      let sq = random_mat rng 4 4 in
      Mat.mul_into ~out:sq sq (Mat.identity 4))

let test_apply_matrix2_matches_full () =
  (* Random 4x4 unitary from a small circuit. *)
  let u = Ub.unitary (Generators.random_circuit ~seed:12 ~depth:3 2) in
  List.iter
    (fun (n, q0, q1) ->
      let c = Generators.random_circuit ~seed:(90 + n) ~depth:3 n in
      let sv = Sv.run_unitary c in
      let direct = Sv.copy sv in
      Sv.apply_matrix2 direct u ~controls:[] ~q0 ~q1;
      (* Reference: swap (q0, q1) onto wires (0, 1), hit the state with
         I ⊗ u as a full matrix-vector product, and swap back. *)
      let expect = Sv.copy sv in
      if q0 <> 0 then Sv.apply_swap expect ~controls:[] q0 0;
      let q1' = if q1 = 0 then q0 else q1 in
      if q1' <> 1 then Sv.apply_swap expect ~controls:[] q1' 1;
      let pad = Mat.kron (Mat.identity (1 lsl (n - 2))) u in
      let v = Mat.mul_vec pad (Sv.to_vec expect) in
      Sv.overwrite expect v;
      if q1' <> 1 then Sv.apply_swap expect ~controls:[] q1' 1;
      if q0 <> 0 then Sv.apply_swap expect ~controls:[] q0 0;
      let dim = 1 lsl n in
      for k = 0 to dim - 1 do
        let a = Sv.amplitude direct k and b = Sv.amplitude expect k in
        if Cx.norm (Cx.sub a b) > 1e-9 then
          Alcotest.failf "apply_matrix2 n=%d (%d,%d): amplitude %d differs" n q0 q1 k
      done)
    [ (2, 0, 1); (3, 1, 2); (4, 0, 2); (5, 3, 1) ]

let test_kraus_weight () =
  let c = Generators.random_circuit ~seed:21 ~depth:4 5 in
  let sv = Sv.run_unitary c in
  List.iter
    (fun ch ->
      List.iter
        (fun k ->
          List.iter
            (fun target ->
              let w = Sv.kraus_weight sv k ~target in
              let branch = Sv.copy sv in
              Sv.apply_matrix branch k ~controls:[] ~target;
              let n = Sv.norm branch in
              Alcotest.(check (float 1e-12)) "kraus weight" (n *. n) w)
            [ 0; 2; 4 ])
        ch)
    [
      Qdt_arraysim.Density.amplitude_damping 0.3;
      Qdt_arraysim.Density.depolarizing 0.2;
      Qdt_arraysim.Density.phase_damping 0.15;
    ]

let () =
  Alcotest.run "qdt_unboxed"
    [
      ( "statevector",
        [
          Alcotest.test_case "matches boxed reference" `Quick test_sv_matches_ref;
          Alcotest.test_case "measurement/reset agree" `Quick
            test_sv_measurement_matches_ref;
          Alcotest.test_case "probabilities + scratch" `Quick
            test_sample_matches_ref_probabilities;
        ] );
      ( "svd",
        [
          Alcotest.test_case "factors vs reference" `Quick test_svd_matches_ref;
          Alcotest.test_case "truncation vs reference" `Quick
            test_svd_truncation_matches_ref;
        ] );
      ( "mps",
        [
          Alcotest.test_case "amplitudes vs reference" `Quick test_mps_matches_ref;
          Alcotest.test_case "truncated fidelity vs reference" `Quick
            test_mps_fidelity_vs_dense;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "vec in-place ops" `Quick test_vec_kernels;
          Alcotest.test_case "mat mul_into" `Quick test_mat_mul_into;
          Alcotest.test_case "fused 4x4 apply" `Quick test_apply_matrix2_matches_full;
          Alcotest.test_case "kraus weight" `Quick test_kraus_weight;
        ] );
    ]
