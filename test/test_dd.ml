open Qdt_linalg
open Qdt_circuit
open Qdt_dd

let s2 = Cx.of_float Cx.sqrt1_2

let check_vec msg expect got =
  if not (Vec.approx_equal ~eps:1e-8 expect got) then
    Alcotest.failf "%s:@.expected %a@.got %a" msg Vec.pp expect Vec.pp got

let check_mat msg expect got =
  if not (Mat.approx_equal ~eps:1e-8 expect got) then
    Alcotest.failf "%s:@.expected@.%a@.got@.%a" msg Mat.pp expect Mat.pp got

(* ------------------------------------------------------------------ *)
(* Cnum_table                                                          *)
(* ------------------------------------------------------------------ *)

let test_cnum_canonical () =
  let t = Cnum_table.create () in
  let id1, v1 = Cnum_table.canonical t (Cx.make 0.5 0.0) in
  let id2, v2 = Cnum_table.canonical t (Cx.make (0.5 +. 1e-12) 0.0) in
  Alcotest.(check int) "same id" id1 id2;
  Alcotest.(check bool) "same value" true (Cx.equal v1 v2);
  let id3, _ = Cnum_table.canonical t (Cx.make 0.6 0.0) in
  Alcotest.(check bool) "distinct id" true (id3 <> id1);
  let idz, vz = Cnum_table.canonical t (Cx.make 1e-13 (-1e-13)) in
  Alcotest.(check int) "zero id" Cnum_table.zero_id idz;
  Alcotest.(check bool) "zero value" true (Cx.equal vz Cx.zero);
  let ido, _ = Cnum_table.canonical t (Cx.make 1.0 1e-12) in
  Alcotest.(check int) "one id" Cnum_table.one_id ido

let test_cnum_boundary () =
  (* Values straddling a quantisation boundary must still unify. *)
  let t = Cnum_table.create ~eps:1e-9 () in
  let a = 0.1234567895 (* sits near a 1e-9 grid line *) in
  let id1, _ = Cnum_table.canonical t (Cx.make (a -. 4e-10) 0.0) in
  let id2, _ = Cnum_table.canonical t (Cx.make (a +. 4e-10) 0.0) in
  Alcotest.(check int) "straddling values unify" id1 id2

(* ------------------------------------------------------------------ *)
(* Construction / canonicity                                           *)
(* ------------------------------------------------------------------ *)

let test_basis_states () =
  let mgr = Pkg.create () in
  for k = 0 to 7 do
    let e = Build.basis_state mgr 3 k in
    check_vec
      (Printf.sprintf "|%d>" k)
      (Vec.basis ~dim:8 k)
      (Pkg.to_vec mgr e ~num_qubits:3);
    Alcotest.(check int) "chain length" 3 (Pkg.node_count e)
  done

let test_from_vec_roundtrip () =
  let mgr = Pkg.create () in
  let st = Random.State.make [| 31 |] in
  for _trial = 1 to 5 do
    let v =
      Vec.normalize
        (Vec.init 8 (fun _ ->
             Cx.make (Random.State.float st 2.0 -. 1.0) (Random.State.float st 2.0 -. 1.0)))
    in
    check_vec "roundtrip" v (Pkg.to_vec mgr (Build.from_vec mgr v) ~num_qubits:3)
  done

let test_hash_consing () =
  let mgr = Pkg.create () in
  let a = Build.from_vec mgr (Vec.of_array [| s2; Cx.zero; Cx.zero; s2 |]) in
  let b = Build.from_vec mgr (Vec.of_array [| s2; Cx.zero; Cx.zero; s2 |]) in
  Alcotest.(check bool) "same edge" true (Pkg.edge_equal a b);
  (match (a.Pkg.target, b.Pkg.target) with
  | Pkg.Node n1, Pkg.Node n2 -> Alcotest.(check int) "same node id" n1.Pkg.id n2.Pkg.id
  | _ -> Alcotest.fail "expected nodes")

let test_bell_dd_fig1 () =
  (* Fig. 1 of the paper: the Bell state as a DD.  Root weight 1/√2,
     amplitude reconstruction by multiplying path weights. *)
  let mgr = Pkg.create () in
  let bell = Build.from_vec mgr (Vec.of_array [| s2; Cx.zero; Cx.zero; s2 |]) in
  Alcotest.(check bool) "root weight = 1/sqrt2" true
    (Cx.approx_equal ~eps:1e-9 bell.Pkg.w s2);
  Alcotest.(check int) "3 nodes (q1 + two q0)" 3 (Pkg.node_count bell);
  Alcotest.(check bool) "amp |00>" true
    (Cx.approx_equal ~eps:1e-9 s2 (Pkg.amplitude mgr bell 0));
  Alcotest.(check bool) "amp |01> = 0" true (Cx.is_zero (Pkg.amplitude mgr bell 1));
  Alcotest.(check bool) "amp |11>" true
    (Cx.approx_equal ~eps:1e-9 s2 (Pkg.amplitude mgr bell 3))

let test_ghz_nodes_linear () =
  (* The headline redundancy claim of Section III: GHZ needs O(n) nodes
     while the array needs 2^n amplitudes. *)
  let mgr = Pkg.create () in
  List.iter
    (fun n ->
      let st = Sim.make mgr n in
      let rng = Random.State.make [| 0 |] in
      List.iter
        (fun instr -> Sim.apply_instruction st instr ~rng ~clbits:[| 0 |])
        (Circuit.instructions (Generators.ghz n));
      Alcotest.(check int)
        (Printf.sprintf "ghz(%d) nodes" n)
        (2 * n - 1)
        (Sim.node_count st))
    [ 2; 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* Gate DDs                                                            *)
(* ------------------------------------------------------------------ *)

let test_identity_dd () =
  let mgr = Pkg.create () in
  let e = Build.identity mgr 3 in
  check_mat "I8" (Mat.identity 8) (Pkg.to_mat mgr e ~num_qubits:3);
  Alcotest.(check int) "identity chain" 3 (Pkg.node_count e)

let test_gate_dd_matches_arrays () =
  let cases =
    [
      ("h q0 of 1", 1, Circuit.Apply { gate = Gate.H; controls = []; target = 0 });
      ("h q1 of 3", 3, Circuit.Apply { gate = Gate.H; controls = []; target = 1 });
      ("x q2 of 3", 3, Circuit.Apply { gate = Gate.X; controls = []; target = 2 });
      ("cx 2->0", 3, Circuit.Apply { gate = Gate.X; controls = [ 2 ]; target = 0 });
      ("cx 0->2", 3, Circuit.Apply { gate = Gate.X; controls = [ 0 ]; target = 2 });
      ("cz 1,2", 3, Circuit.Apply { gate = Gate.Z; controls = [ 1 ]; target = 2 });
      ("ccx", 3, Circuit.Apply { gate = Gate.X; controls = [ 1; 2 ]; target = 0 });
      ("ccx mixed", 4, Circuit.Apply { gate = Gate.X; controls = [ 0; 3 ]; target = 1 });
      ("ct", 3, Circuit.Apply { gate = Gate.T; controls = [ 0 ]; target = 2 });
      ("swap 0,2", 3, Circuit.Swap { controls = []; a = 0; b = 2 });
      ("cswap", 3, Circuit.Swap { controls = [ 2 ]; a = 0; b = 1 });
      ("rz", 2, Circuit.Apply { gate = Gate.Rz 0.7; controls = []; target = 1 });
    ]
  in
  List.iter
    (fun (name, n, instr) ->
      let mgr = Pkg.create () in
      let dd = Build.instruction mgr ~num_qubits:n instr in
      let expect = Qdt_arraysim.Unitary_builder.instruction_matrix ~num_qubits:n instr in
      check_mat name expect (Pkg.to_mat mgr dd ~num_qubits:n))
    cases

let test_circuit_unitary_dd () =
  List.iter
    (fun (name, c) ->
      let mgr = Pkg.create () in
      let dd = Build.circuit_unitary mgr c in
      let expect = Qdt_arraysim.Unitary_builder.unitary c in
      check_mat name expect (Pkg.to_mat mgr dd ~num_qubits:(Circuit.num_qubits c)))
    [
      ("bell", Generators.bell);
      ("qft3", Generators.qft 3);
      ("random", Generators.random_circuit ~seed:17 ~depth:3 3);
      ("grover", Generators.grover_iterations ~marked:1 ~iterations:1 2);
    ]

let test_projector () =
  let mgr = Pkg.create () in
  let p = Build.projector_ones mgr 2 [ 1 ] in
  let expect =
    Mat.init 4 4 (fun r c -> if r = c && r land 2 <> 0 then Cx.one else Cx.zero)
  in
  check_mat "P(q1=1)" expect (Pkg.to_mat mgr p ~num_qubits:2)

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                          *)
(* ------------------------------------------------------------------ *)

let test_add () =
  let mgr = Pkg.create () in
  let v1 = Vec.of_array [| Cx.one; Cx.zero; Cx.i; Cx.zero |] in
  let v2 = Vec.of_array [| Cx.zero; Cx.of_float 2.0; Cx.i; Cx.one |] in
  let sum = Pkg.add mgr (Build.from_vec mgr v1) (Build.from_vec mgr v2) in
  check_vec "add" (Vec.add v1 v2) (Pkg.to_vec mgr sum ~num_qubits:2)

let test_add_cancellation () =
  let mgr = Pkg.create () in
  let v = Build.from_vec mgr (Vec.of_array [| s2; Cx.zero; Cx.zero; s2 |]) in
  let neg = Pkg.scale mgr Cx.minus_one v in
  let sum = Pkg.add mgr v neg in
  Alcotest.(check bool) "cancels to zero edge" true (Pkg.is_zero sum)

let test_mul_mm_adjoint_trace () =
  let mgr = Pkg.create () in
  let c = Generators.random_circuit ~seed:3 ~depth:3 3 in
  let u = Build.circuit_unitary mgr c in
  let udag = Pkg.adjoint mgr u in
  let prod = Pkg.mul_mm mgr udag u in
  check_mat "U†U = I" (Mat.identity 8) (Pkg.to_mat mgr prod ~num_qubits:3);
  let tr = Pkg.trace mgr prod in
  Alcotest.(check bool) "trace = 8" true (Cx.approx_equal ~eps:1e-7 (Cx.of_float 8.0) tr)

let test_kron () =
  let mgr = Pkg.create () in
  let upper = Build.from_vec mgr (Vec.of_array [| s2; s2 |]) in
  let lower = Build.from_vec mgr (Vec.of_array [| Cx.zero; Cx.one |]) in
  let prod = Pkg.kron mgr ~lower_qubits:1 upper lower in
  check_vec "kron |+>|1>"
    (Vec.of_array [| Cx.zero; s2; Cx.zero; s2 |])
    (Pkg.to_vec mgr prod ~num_qubits:2);
  (* matrix kron: H ⊗ I = gate dd of H on q1 *)
  let h_up = Build.gate mgr ~num_qubits:1 ~controls:[] ~target:0 Gates.h in
  let id1 = Build.identity mgr 1 in
  let hk = Pkg.kron mgr ~lower_qubits:1 h_up id1 in
  let expect = Build.gate mgr ~num_qubits:2 ~controls:[] ~target:1 Gates.h in
  Alcotest.(check bool) "H⊗I shares node" true (Pkg.edge_equal hk expect)

let test_inner () =
  let mgr = Pkg.create () in
  let a = Build.from_vec mgr (Vec.of_array [| s2; Cx.zero; Cx.zero; s2 |]) in
  let b = Build.basis_state mgr 2 0 in
  Alcotest.(check bool) "<bell|00>" true
    (Cx.approx_equal ~eps:1e-9 s2 (Pkg.inner mgr a b));
  Alcotest.(check bool) "<bell|bell>" true
    (Cx.approx_equal ~eps:1e-9 Cx.one (Pkg.inner mgr a a))

(* ------------------------------------------------------------------ *)
(* Simulation agrees with arrays                                       *)
(* ------------------------------------------------------------------ *)

let circuits_to_cross_check =
  [
    ("bell", Generators.bell);
    ("ghz5", Generators.ghz 5);
    ("w4", Generators.w_state 4);
    ("qft4", Generators.qft 4);
    ("grover3", Generators.grover ~marked:5 3);
    ("bv", Generators.bernstein_vazirani ~secret:11 4);
    ("adder", Generators.cuccaro_adder 2);
    ("random1", Generators.random_circuit ~seed:1 ~depth:4 4);
    ("random2", Generators.random_circuit ~seed:2 ~depth:6 3);
    ("clifford_t", Generators.random_clifford_t ~seed:5 ~gates:60 ~t_fraction:0.2 4);
    ("phase_est", Generators.phase_estimation ~phase:0.3125 4);
  ]

let test_sim_matches_arrays () =
  List.iter
    (fun (name, c) ->
      let dd = Sim.run_unitary c in
      let sv = Qdt_arraysim.Statevector.run_unitary c in
      check_vec name (Qdt_arraysim.Statevector.to_vec sv) (Sim.to_vec dd))
    circuits_to_cross_check

let test_sim_measurement () =
  let c = Circuit.measure_all Generators.bell in
  let seen = Hashtbl.create 4 in
  for seed = 0 to 63 do
    let _, clbits = Sim.run ~seed c in
    Alcotest.(check int) "correlated" clbits.(0) clbits.(1);
    Hashtbl.replace seen clbits.(0) ()
  done;
  Alcotest.(check int) "both outcomes" 2 (Hashtbl.length seen)

let test_sim_sampling () =
  let st, _ = Sim.run (Generators.ghz 6) in
  let counts = Sim.sample ~seed:9 st ~shots:1000 in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 counts in
  Alcotest.(check int) "all shots" 1000 total;
  List.iter
    (fun (k, c) ->
      Alcotest.(check bool) "only extremes" true (k = 0 || k = 63);
      Alcotest.(check bool) "balanced" true (c > 400 && c < 600))
    counts

let test_sim_w_sampling () =
  let st, _ = Sim.run (Generators.w_state 5) in
  let counts = Sim.sample ~seed:4 st ~shots:2000 in
  List.iter
    (fun (k, _) ->
      Alcotest.(check bool) "one-hot only" true (List.mem k [ 1; 2; 4; 8; 16 ]))
    counts;
  Alcotest.(check int) "all five appear" 5 (List.length counts)

let test_prob_expectation () =
  let st, _ = Sim.run (Generators.w_state 4) in
  Alcotest.(check (float 1e-9)) "prob_one" 0.25 (Sim.prob_one st 2);
  Alcotest.(check (float 1e-9)) "<Z>" 0.5 (Sim.expectation_z st 2)

let test_sim_fidelity () =
  let mgr = Pkg.create () in
  let a = Sim.make mgr 3 and b = Sim.make mgr 3 in
  let rng = Random.State.make [| 0 |] in
  List.iter
    (fun instr -> Sim.apply_instruction a instr ~rng ~clbits:[| 0 |])
    (Circuit.instructions (Generators.ghz 3));
  Alcotest.(check (float 1e-9)) "<ghz|000>^2" 0.5 (Sim.fidelity a b);
  Alcotest.(check (float 1e-9)) "self" 1.0 (Sim.fidelity a a)

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec loop k = k + nl <= hl && (String.sub haystack k nl = needle || loop (k + 1)) in
  loop 0

let test_dot_export () =
  let mgr = Pkg.create () in
  let bell = Build.from_vec mgr (Vec.of_array [| s2; Cx.zero; Cx.zero; s2 |]) in
  let dot = Export.to_dot mgr bell in
  Alcotest.(check bool) "digraph" true (contains ~needle:"digraph dd" dot);
  Alcotest.(check bool) "q1 node" true (contains ~needle:"q1" dot);
  Alcotest.(check bool) "0-stub" true (contains ~needle:"shape=square" dot)

(* ------------------------------------------------------------------ *)
(* Memory management: refcounts, GC, bounded caches                    *)
(* ------------------------------------------------------------------ *)

let test_refcount () =
  let mgr = Pkg.create () in
  let e = Build.basis_state mgr 3 1 in
  Alcotest.(check int) "fresh node rc" 0 (Pkg.refcount e);
  Pkg.ref_edge mgr e;
  Pkg.ref_edge mgr e;
  Alcotest.(check int) "rc after two refs" 2 (Pkg.refcount e);
  Pkg.unref_edge mgr e;
  Alcotest.(check int) "rc after unref" 1 (Pkg.refcount e);
  Pkg.unref_edge mgr e

let test_gc_collects () =
  let mgr = Pkg.create ~gc_threshold:0 () in
  let st = Random.State.make [| 11 |] in
  let random_vec () =
    Vec.normalize
      (Vec.init 16 (fun _ ->
           Cx.make (Random.State.float st 2.0 -. 1.0) (Random.State.float st 2.0 -. 1.0)))
  in
  let keep = Build.from_vec mgr (random_vec ()) in
  Pkg.ref_edge mgr keep;
  let keep_vec = Pkg.to_vec mgr keep ~num_qubits:4 in
  for _ = 1 to 8 do
    ignore (Build.from_vec mgr (random_vec ()))
  done;
  let before = Pkg.unique_table_size mgr in
  let collected = Pkg.gc mgr in
  Alcotest.(check bool) "collected garbage" true (collected > 0);
  Alcotest.(check bool) "table shrank" true (Pkg.unique_table_size mgr < before);
  Alcotest.(check int) "only the pinned state survives" (Pkg.node_count keep)
    (Pkg.unique_table_size mgr);
  check_vec "pinned amplitudes intact" keep_vec (Pkg.to_vec mgr keep ~num_qubits:4);
  Pkg.unref_edge mgr keep;
  ignore (Pkg.gc mgr);
  Alcotest.(check int) "everything collected once unpinned" 0 (Pkg.unique_table_size mgr);
  Alcotest.(check int) "cnum table back to {0, 1}" 2 (Pkg.cnum_live_entries mgr);
  let stats = Pkg.cache_stats mgr in
  Alcotest.(check int) "gc runs counted" 2 stats.Pkg.gc_runs;
  Alcotest.(check bool) "cnums swept" true (stats.Pkg.cnums_collected > 0)

let test_auto_gc_trigger () =
  let mgr = Pkg.create ~gc_threshold:64 () in
  let c = Generators.random_clifford_t ~seed:3 ~gates:120 ~t_fraction:0.3 5 in
  let st = Sim.make mgr 5 in
  let rng = Random.State.make [| 0 |] in
  let clbits = Array.make 1 0 in
  List.iter
    (fun instr -> Sim.apply_instruction st instr ~rng ~clbits)
    (Circuit.instructions c);
  let stats = Pkg.cache_stats mgr in
  Alcotest.(check bool) "threshold triggered collections" true (stats.Pkg.gc_runs > 0);
  Alcotest.(check bool) "peak recorded" true (stats.Pkg.peak_nodes >= stats.Pkg.live_nodes);
  let sv = Qdt_arraysim.Statevector.run_unitary c in
  check_vec "state matches arrays despite GC"
    (Qdt_arraysim.Statevector.to_vec sv)
    (Sim.to_vec st)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_dd_matches_array_sim =
  QCheck.Test.make ~name:"DD sim = array sim on random circuits" ~count:25
    (QCheck.make QCheck.Gen.(pair (int_range 1 5) (int_range 0 10000)))
    (fun (n, seed) ->
      let c = Generators.random_circuit ~seed ~depth:3 n in
      let dd = Sim.run_unitary c in
      let sv = Qdt_arraysim.Statevector.run_unitary c in
      Vec.approx_equal ~eps:1e-7 (Qdt_arraysim.Statevector.to_vec sv) (Sim.to_vec dd))

let prop_canonicity =
  QCheck.Test.make ~name:"same vector -> same edge" ~count:25
    (QCheck.make QCheck.Gen.(int_range 0 10000))
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let mgr = Pkg.create () in
      let v =
        Vec.normalize
          (Vec.init 16 (fun _ ->
               Cx.make
                 (Random.State.float st 2.0 -. 1.0)
                 (Random.State.float st 2.0 -. 1.0)))
      in
      let a = Build.from_vec mgr v and b = Build.from_vec mgr v in
      Pkg.edge_equal a b)

let prop_unitarity_preserved =
  QCheck.Test.make ~name:"DD norm preserved" ~count:20
    (QCheck.make QCheck.Gen.(pair (int_range 1 4) (int_range 0 1000)))
    (fun (n, seed) ->
      let c = Generators.random_clifford_t ~seed ~gates:40 ~t_fraction:0.25 n in
      let st = Sim.run_unitary c in
      let mgr = Sim.manager st in
      Float.abs ((Pkg.inner mgr (Sim.root st) (Sim.root st)).Cx.re -. 1.0) < 1e-7)

(* Run a circuit on [mgr], forcing a full collection after every
   instruction when [force_gc] — the harshest schedule the refcount
   protocol must survive. *)
let run_on_manager ?(force_gc = false) mgr c =
  let st = Sim.make mgr (Circuit.num_qubits c) in
  let rng = Random.State.make [| 0 |] in
  let clbits = Array.make (max 1 (Circuit.num_clbits c)) 0 in
  List.iter
    (fun instr ->
      Sim.apply_instruction st instr ~rng ~clbits;
      if force_gc then ignore (Pkg.gc mgr))
    (Circuit.instructions c);
  st

let prop_gc_preserves_results =
  QCheck.Test.make ~name:"forced GC after every instruction preserves the state"
    ~count:20
    (QCheck.make QCheck.Gen.(pair (int_range 1 5) (int_range 0 10000)))
    (fun (n, seed) ->
      let c = Generators.random_circuit ~seed ~depth:3 n in
      let st = run_on_manager ~force_gc:true (Pkg.create ~gc_threshold:0 ()) c in
      let sv = Qdt_arraysim.Statevector.run_unitary c in
      Vec.approx_equal ~eps:1e-7 (Qdt_arraysim.Statevector.to_vec sv) (Sim.to_vec st))

let prop_canonicity_across_gc =
  QCheck.Test.make ~name:"canonicity survives a collection" ~count:25
    (QCheck.make QCheck.Gen.(int_range 0 10000))
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let mgr = Pkg.create ~gc_threshold:0 () in
      let random_vec () =
        Vec.normalize
          (Vec.init 16 (fun _ ->
               Cx.make
                 (Random.State.float st 2.0 -. 1.0)
                 (Random.State.float st 2.0 -. 1.0)))
      in
      let v = random_vec () in
      let a = Build.from_vec mgr v in
      Pkg.ref_edge mgr a;
      ignore (Build.from_vec mgr (random_vec ()));
      ignore (Pkg.gc mgr);
      (* Rebuilding the same vector must hash-cons onto the survivor. *)
      let b = Build.from_vec mgr v in
      Pkg.edge_equal a b)

let prop_tiny_cache_safe =
  QCheck.Test.make ~name:"cache eviction never changes results" ~count:20
    (QCheck.make QCheck.Gen.(pair (int_range 1 5) (int_range 0 10000)))
    (fun (n, seed) ->
      let c = Generators.random_circuit ~seed ~depth:3 n in
      (* Two slots per compute cache: almost every store evicts. *)
      let st = run_on_manager (Pkg.create ~cache_bits:1 ()) c in
      let sv = Qdt_arraysim.Statevector.run_unitary c in
      Vec.approx_equal ~eps:1e-7 (Qdt_arraysim.Statevector.to_vec sv) (Sim.to_vec st))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_dd_matches_array_sim;
      prop_canonicity;
      prop_unitarity_preserved;
      prop_gc_preserves_results;
      prop_canonicity_across_gc;
      prop_tiny_cache_safe;
    ]

let () =
  Alcotest.run "qdt_dd"
    [
      ( "cnum",
        [
          Alcotest.test_case "canonical" `Quick test_cnum_canonical;
          Alcotest.test_case "boundary" `Quick test_cnum_boundary;
        ] );
      ( "build",
        [
          Alcotest.test_case "basis states" `Quick test_basis_states;
          Alcotest.test_case "from_vec roundtrip" `Quick test_from_vec_roundtrip;
          Alcotest.test_case "hash consing" `Quick test_hash_consing;
          Alcotest.test_case "paper fig 1" `Quick test_bell_dd_fig1;
          Alcotest.test_case "ghz linear" `Quick test_ghz_nodes_linear;
          Alcotest.test_case "identity" `Quick test_identity_dd;
          Alcotest.test_case "projector" `Quick test_projector;
        ] );
      ( "gates",
        [
          Alcotest.test_case "gate dds vs arrays" `Quick test_gate_dd_matches_arrays;
          Alcotest.test_case "circuit unitary" `Quick test_circuit_unitary_dd;
        ] );
      ( "arithmetic",
        [
          Alcotest.test_case "add" `Quick test_add;
          Alcotest.test_case "cancellation" `Quick test_add_cancellation;
          Alcotest.test_case "mul/adjoint/trace" `Quick test_mul_mm_adjoint_trace;
          Alcotest.test_case "kron" `Quick test_kron;
          Alcotest.test_case "inner" `Quick test_inner;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "matches arrays" `Quick test_sim_matches_arrays;
          Alcotest.test_case "measurement" `Quick test_sim_measurement;
          Alcotest.test_case "sampling ghz" `Quick test_sim_sampling;
          Alcotest.test_case "sampling w" `Quick test_sim_w_sampling;
          Alcotest.test_case "prob/expectation" `Quick test_prob_expectation;
          Alcotest.test_case "fidelity" `Quick test_sim_fidelity;
        ] );
      ( "memory",
        [
          Alcotest.test_case "refcounts" `Quick test_refcount;
          Alcotest.test_case "gc collects" `Quick test_gc_collects;
          Alcotest.test_case "auto gc trigger" `Quick test_auto_gc_trigger;
        ] );
      ("export", [ Alcotest.test_case "dot" `Quick test_dot_export ]);
      ("properties", props);
    ]
