open Qdt_linalg
open Qdt_circuit
open Qdt_arraysim

let s2 = Cx.of_float Cx.sqrt1_2

let check_state msg expect sv =
  if not (Vec.approx_equal ~eps:1e-9 expect (Statevector.to_vec sv)) then
    Alcotest.failf "%s:@.expected %a@.got %a" msg Vec.pp expect Vec.pp
      (Statevector.to_vec sv)

let check_state_phase msg expect sv =
  if not (Vec.equal_up_to_global_phase ~eps:1e-8 expect (Statevector.to_vec sv)) then
    Alcotest.failf "%s (up to phase):@.expected %a@.got %a" msg Vec.pp expect Vec.pp
      (Statevector.to_vec sv)

(* ------------------------------------------------------------------ *)
(* Statevector basics                                                  *)
(* ------------------------------------------------------------------ *)

let test_initial_state () =
  let sv = Statevector.create 3 in
  Alcotest.(check (float 1e-12)) "p(|000>)" 1.0 (Statevector.probability sv 0);
  Alcotest.(check (float 1e-12)) "norm" 1.0 (Statevector.norm sv)

let test_bell_example1 () =
  (* Paper Example 1: end-to-end Bell preparation. *)
  let sv, _ = Statevector.run Generators.bell in
  check_state "bell" (Vec.of_array [| s2; Cx.zero; Cx.zero; s2 |]) sv;
  Alcotest.(check (float 1e-12)) "p(00)" 0.5 (Statevector.probability sv 0);
  Alcotest.(check (float 1e-12)) "p(11)" 0.5 (Statevector.probability sv 3)

let test_gate_application_strides () =
  (* X on each qubit of |000> lands on the right basis state. *)
  List.iter
    (fun q ->
      let sv = Statevector.create 3 in
      Statevector.apply_gate sv Gate.X ~controls:[] ~target:q;
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "X on qubit %d" q)
        1.0
        (Statevector.probability sv (1 lsl q)))
    [ 0; 1; 2 ]

let test_diagonal_fast_paths () =
  (* Diagonal (Z/S/T/Rz) and anti-diagonal (X/Y) gates take a specialised
     kernel; check it against the full circuit unitary from a state with
     every amplitude distinct, controls included. *)
  let n = 3 in
  let st = Random.State.make [| 42 |] in
  let v0 =
    Vec.normalize
      (Vec.init (1 lsl n) (fun _ ->
           Cx.make (Random.State.float st 2.0 -. 1.0) (Random.State.float st 2.0 -. 1.0)))
  in
  List.iter
    (fun (name, gate, controls, target) ->
      let sv = Statevector.of_vec n v0 in
      Statevector.apply_gate sv gate ~controls ~target;
      let c =
        Circuit.add (Circuit.Apply { gate; controls; target }) (Circuit.empty n)
      in
      let expect = Mat.mul_vec (Unitary_builder.unitary c) v0 in
      if not (Vec.approx_equal ~eps:1e-9 expect (Statevector.to_vec sv)) then
        Alcotest.failf "%s: fast path disagrees with the circuit unitary" name)
    [
      ("Z", Gate.Z, [], 1);
      ("S", Gate.S, [], 0);
      ("T", Gate.T, [], 2);
      ("Rz", Gate.Rz 0.7, [], 1);
      ("X", Gate.X, [], 1);
      ("Y", Gate.Y, [], 2);
      ("CZ", Gate.Z, [ 0 ], 2);
      ("CX", Gate.X, [ 2 ], 0);
      ("CCRz", Gate.Rz 1.3, [ 0; 2 ], 1);
      ("H (general kernel)", Gate.H, [], 1);
    ]

let test_controlled_gate () =
  let sv = Statevector.create 2 in
  (* control not satisfied: nothing happens *)
  Statevector.apply_gate sv Gate.X ~controls:[ 1 ] ~target:0;
  Alcotest.(check (float 1e-12)) "inactive" 1.0 (Statevector.probability sv 0);
  (* set control, now it fires *)
  Statevector.apply_gate sv Gate.X ~controls:[] ~target:1;
  Statevector.apply_gate sv Gate.X ~controls:[ 1 ] ~target:0;
  Alcotest.(check (float 1e-12)) "active" 1.0 (Statevector.probability sv 3)

let test_toffoli () =
  let run_input bits =
    let sv = Statevector.create 3 in
    List.iteri
      (fun q bit ->
        if bit = 1 then Statevector.apply_gate sv Gate.X ~controls:[] ~target:q)
      bits;
    Statevector.apply_gate sv Gate.X ~controls:[ 1; 2 ] ~target:0;
    Statevector.probabilities sv
  in
  (* only |.11> inputs flip qubit 0: bits listed as [q0; q1; q2] *)
  Alcotest.(check (float 1e-12)) "110 -> 111" 1.0 (run_input [ 0; 1; 1 ]).(7);
  Alcotest.(check (float 1e-12)) "010 stays" 1.0 (run_input [ 0; 1; 0 ]).(2);
  Alcotest.(check (float 1e-12)) "111 -> 110" 1.0 (run_input [ 1; 1; 1 ]).(6)

let test_swap () =
  let sv = Statevector.create 2 in
  Statevector.apply_gate sv Gate.X ~controls:[] ~target:0;
  Statevector.apply_swap sv ~controls:[] 0 1;
  Alcotest.(check (float 1e-12)) "swapped" 1.0 (Statevector.probability sv 2);
  (* controlled swap with control low: no-op *)
  let sv2 = Statevector.create 3 in
  Statevector.apply_gate sv2 Gate.X ~controls:[] ~target:0;
  Statevector.apply_swap sv2 ~controls:[ 2 ] 0 1;
  Alcotest.(check (float 1e-12)) "fredkin inactive" 1.0 (Statevector.probability sv2 1)

let test_expectation_z () =
  let sv, _ = Statevector.run Circuit.(empty 1 |> h 0) in
  Alcotest.(check (float 1e-10)) "<Z> of |+>" 0.0 (Statevector.expectation_z sv 0);
  let sv1, _ = Statevector.run Circuit.(empty 1 |> x 0) in
  Alcotest.(check (float 1e-10)) "<Z> of |1>" (-1.0) (Statevector.expectation_z sv1 0)

(* ------------------------------------------------------------------ *)
(* Generator semantics                                                 *)
(* ------------------------------------------------------------------ *)

let test_ghz_semantics () =
  List.iter
    (fun n ->
      let sv, _ = Statevector.run (Generators.ghz n) in
      let dim = 1 lsl n in
      Alcotest.(check (float 1e-10)) "p(0...0)" 0.5 (Statevector.probability sv 0);
      Alcotest.(check (float 1e-10)) "p(1...1)" 0.5 (Statevector.probability sv (dim - 1)))
    [ 1; 2; 3; 5; 8 ]

let test_w_state_semantics () =
  List.iter
    (fun n ->
      let sv, _ = Statevector.run (Generators.w_state n) in
      let expect = 1.0 /. Float.of_int n in
      for q = 0 to n - 1 do
        Alcotest.(check (float 1e-10))
          (Printf.sprintf "W_%d one-hot %d" n q)
          expect
          (Statevector.probability sv (1 lsl q))
      done;
      Alcotest.(check (float 1e-10)) "no |0...0>" 0.0 (Statevector.probability sv 0))
    [ 1; 2; 3; 4; 6 ]

let test_qft_matches_dft () =
  List.iter
    (fun n ->
      let dim = 1 lsl n in
      let u = Unitary_builder.unitary (Generators.qft n) in
      let omega = 2.0 *. Float.pi /. Float.of_int dim in
      let dft =
        Mat.init dim dim (fun r c ->
            Cx.scale (1.0 /. Float.sqrt (Float.of_int dim))
              (Cx.exp_i (omega *. Float.of_int (r * c))))
      in
      if not (Mat.approx_equal ~eps:1e-9 dft u) then
        Alcotest.failf "QFT(%d) is not the DFT matrix:@.%a" n Mat.pp u)
    [ 1; 2; 3; 4 ]

let test_grover_amplifies () =
  let n = 4 and marked = 11 in
  let sv, _ = Statevector.run (Generators.grover ~marked n) in
  let p = Statevector.probability sv marked in
  Alcotest.(check bool) (Printf.sprintf "p(marked)=%f > 0.9" p) true (p > 0.9)

let test_bernstein_vazirani () =
  let n = 5 in
  List.iter
    (fun secret ->
      let sv, _ = Statevector.run (Generators.bernstein_vazirani ~secret n) in
      (* query register should be exactly |secret>; ancilla is in |-> *)
      let p = ref 0.0 in
      for anc = 0 to 1 do
        p := !p +. Statevector.probability sv (secret lor (anc lsl n))
      done;
      Alcotest.(check (float 1e-10)) (Printf.sprintf "secret %d" secret) 1.0 !p)
    [ 0; 1; 19; 31 ]

let test_deutsch_jozsa () =
  let n = 3 in
  let sv_const, _ = Statevector.run (Generators.deutsch_jozsa ~balanced:false n) in
  let p_zero = ref 0.0 in
  for anc = 0 to 1 do
    p_zero := !p_zero +. Statevector.probability sv_const (anc lsl n)
  done;
  Alcotest.(check (float 1e-10)) "constant -> |0..0>" 1.0 !p_zero;
  let sv_bal, _ = Statevector.run (Generators.deutsch_jozsa ~balanced:true n) in
  let p_zero_bal = ref 0.0 in
  for anc = 0 to 1 do
    p_zero_bal := !p_zero_bal +. Statevector.probability sv_bal (anc lsl n)
  done;
  Alcotest.(check (float 1e-10)) "balanced -> not |0..0>" 0.0 !p_zero_bal

let test_cuccaro_adder () =
  let n = 3 in
  let circuit = Generators.cuccaro_adder n in
  let add_case a b =
    (* prepare inputs: qubit 2i+1 = b_i, 2i+2 = a_i *)
    let prep = ref (Circuit.empty (Circuit.num_qubits circuit)) in
    for i = 0 to n - 1 do
      if b land (1 lsl i) <> 0 then prep := Circuit.x ((2 * i) + 1) !prep;
      if a land (1 lsl i) <> 0 then prep := Circuit.x ((2 * i) + 2) !prep
    done;
    let sv, _ = Statevector.run (Circuit.append !prep circuit) in
    (* decode: find the basis state with probability 1 *)
    let probs = Statevector.probabilities sv in
    let idx = ref 0 in
    Array.iteri (fun k p -> if p > 0.5 then idx := k) probs;
    let result = ref 0 in
    for i = 0 to n - 1 do
      if !idx land (1 lsl ((2 * i) + 1)) <> 0 then result := !result lor (1 lsl i)
    done;
    if !idx land (1 lsl ((2 * n) + 1)) <> 0 then result := !result lor (1 lsl n);
    (* a register must be preserved *)
    let a_out = ref 0 in
    for i = 0 to n - 1 do
      if !idx land (1 lsl ((2 * i) + 2)) <> 0 then a_out := !a_out lor (1 lsl i)
    done;
    Alcotest.(check int) (Printf.sprintf "a preserved (%d+%d)" a b) a !a_out;
    Alcotest.(check int) (Printf.sprintf "%d+%d" a b) (a + b) !result
  in
  List.iter (fun (a, b) -> add_case a b)
    [ (0, 0); (1, 1); (3, 5); (7, 7); (4, 3); (6, 7); (5, 5) ]

let test_phase_estimation () =
  let bits = 4 in
  List.iter
    (fun k ->
      let phase = Float.of_int k /. 16.0 in
      let sv, _ = Statevector.run (Generators.phase_estimation ~phase bits) in
      (* counting register is qubits 1..bits; eigenstate qubit 0 stays |1> *)
      let probs = Statevector.probabilities sv in
      let best = ref 0 and best_p = ref 0.0 in
      Array.iteri
        (fun idx p ->
          if p > !best_p then begin
            best := idx;
            best_p := p
          end)
        probs;
      let counting = (!best lsr 1) land ((1 lsl bits) - 1) in
      Alcotest.(check bool) "eigenstate intact" true (!best land 1 = 1);
      Alcotest.(check int) (Printf.sprintf "phase %d/16" k) k counting;
      Alcotest.(check bool) "confident" true (!best_p > 0.99))
    [ 0; 1; 5; 11; 15 ]

(* ------------------------------------------------------------------ *)
(* Measurement, sampling                                               *)
(* ------------------------------------------------------------------ *)

let test_measurement_collapse () =
  let sv, _ = Statevector.run Generators.bell in
  let rng = Random.State.make [| 123 |] in
  let bit0 = Statevector.measure_qubit sv ~rng 0 in
  (* After measuring one half of a Bell pair, the other is determined. *)
  let bit1 = Statevector.measure_qubit sv ~rng 1 in
  Alcotest.(check int) "correlated" bit0 bit1;
  Alcotest.(check (float 1e-12)) "norm preserved" 1.0 (Statevector.norm sv)

let test_run_with_measurement () =
  let c = Circuit.measure_all Generators.bell in
  let seen = Hashtbl.create 4 in
  for seed = 0 to 99 do
    let _, clbits = Statevector.run ~seed c in
    Alcotest.(check int) "correlated clbits" clbits.(0) clbits.(1);
    Hashtbl.replace seen clbits.(0) ()
  done;
  Alcotest.(check int) "both outcomes occur" 2 (Hashtbl.length seen)

let test_reset () =
  let c = Circuit.(empty 1 |> h 0 |> reset 0) in
  let sv, _ = Statevector.run ~seed:7 c in
  Alcotest.(check (float 1e-12)) "reset to |0>" 1.0 (Statevector.probability sv 0)

let test_sampling () =
  let sv, _ = Statevector.run Generators.bell in
  let counts = Statevector.sample ~seed:5 sv ~shots:2000 in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 counts in
  Alcotest.(check int) "all shots" 2000 total;
  List.iter
    (fun (k, c) ->
      Alcotest.(check bool) "only 00/11" true (k = 0 || k = 3);
      Alcotest.(check bool) "roughly half" true (c > 850 && c < 1150))
    counts

(* ------------------------------------------------------------------ *)
(* Unitary builder                                                     *)
(* ------------------------------------------------------------------ *)

let test_unitary_bell () =
  let u = Unitary_builder.unitary Generators.bell in
  let expect =
    Mat.scale (Cx.of_float Cx.sqrt1_2)
      (Mat.of_rows
         [|
           [| Cx.one; Cx.zero; Cx.one; Cx.zero |];
           [| Cx.zero; Cx.one; Cx.zero; Cx.one |];
           [| Cx.zero; Cx.one; Cx.zero; Cx.scale (-1.0) Cx.one |];
           [| Cx.one; Cx.zero; Cx.scale (-1.0) Cx.one; Cx.zero |];
         |])
  in
  if not (Mat.approx_equal ~eps:1e-10 expect u) then
    Alcotest.failf "bell unitary mismatch:@.%a" Mat.pp u

let test_unitary_methods_agree () =
  List.iter
    (fun c ->
      let a = Unitary_builder.unitary c in
      let b = Unitary_builder.unitary_by_columns c in
      if not (Mat.approx_equal ~eps:1e-9 a b) then Alcotest.fail "methods disagree")
    [
      Generators.qft 3;
      Generators.grover ~marked:2 2;
      Generators.random_circuit ~seed:9 ~depth:4 3;
      Circuit.(empty 3 |> cswap 2 0 1 |> ccx 0 1 2);
    ]

let test_unitary_is_unitary () =
  let u = Unitary_builder.unitary (Generators.random_circuit ~seed:2 ~depth:5 4) in
  Alcotest.(check bool) "unitary" true (Mat.is_unitary ~eps:1e-8 u)

(* ------------------------------------------------------------------ *)
(* Density matrices and noise                                          *)
(* ------------------------------------------------------------------ *)

let test_density_pure () =
  let d = Density.run Generators.bell in
  Alcotest.(check (float 1e-10)) "trace" 1.0 (Density.trace d);
  Alcotest.(check (float 1e-10)) "purity" 1.0 (Density.purity d);
  let sv, _ = Statevector.run Generators.bell in
  Alcotest.(check (float 1e-10)) "fidelity" 1.0 (Density.fidelity_to_pure d sv);
  let probs = Density.probabilities d in
  Alcotest.(check (float 1e-10)) "p00" 0.5 probs.(0);
  Alcotest.(check (float 1e-10)) "p11" 0.5 probs.(3)

let test_density_matches_statevector () =
  let c = Generators.random_circuit ~seed:4 ~depth:3 3 in
  let d = Density.run c in
  let sv, _ = Statevector.run c in
  Alcotest.(check (float 1e-8)) "pure fidelity" 1.0 (Density.fidelity_to_pure d sv)

let test_depolarizing_mixes () =
  let d = Density.run ~noise:(fun () -> Density.depolarizing 0.2) Generators.bell in
  Alcotest.(check (float 1e-10)) "trace preserved" 1.0 (Density.trace d);
  Alcotest.(check bool) "purity dropped" true (Density.purity d < 0.99);
  let sv, _ = Statevector.run Generators.bell in
  Alcotest.(check bool) "fidelity dropped" true (Density.fidelity_to_pure d sv < 0.999)

let test_amplitude_damping () =
  (* Fully damping |1> returns it to |0>. *)
  let d = Density.run Circuit.(empty 1 |> x 0) in
  Density.apply_channel d (Density.amplitude_damping 1.0) 0;
  let probs = Density.probabilities d in
  Alcotest.(check (float 1e-10)) "damped to ground" 1.0 probs.(0)

let test_channels_trace_preserving () =
  List.iter
    (fun (name, ch) ->
      (* Σ K†K = I is the CPTP condition. *)
      let acc =
        List.fold_left
          (fun acc k -> Mat.add acc (Mat.mul (Mat.dagger k) k))
          (Mat.create 2 2) ch
      in
      if not (Mat.approx_equal ~eps:1e-10 (Mat.identity 2) acc) then
        Alcotest.failf "%s is not trace preserving" name)
    [
      ("depolarizing", Density.depolarizing 0.3);
      ("amplitude_damping", Density.amplitude_damping 0.4);
      ("phase_damping", Density.phase_damping 0.2);
      ("bit_flip", Density.bit_flip 0.1);
    ]

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_norm_preserved =
  QCheck.Test.make ~name:"unitary circuits preserve norm" ~count:30
    (QCheck.make QCheck.Gen.(pair (int_range 1 5) (int_range 0 1000)))
    (fun (n, seed) ->
      let c = Generators.random_circuit ~seed ~depth:3 n in
      let sv, _ = Statevector.run c in
      Float.abs (Statevector.norm sv -. 1.0) < 1e-9)

let prop_double_application_identity =
  QCheck.Test.make ~name:"self-inverse gates square to identity" ~count:30
    (QCheck.make QCheck.Gen.(pair (int_range 1 4) (int_range 0 3)))
    (fun (n, which) ->
      let g = List.nth [ Gate.X; Gate.Y; Gate.Z; Gate.H ] which in
      let sv = Statevector.create n in
      (* randomise the state a bit first *)
      Statevector.apply_gate sv Gate.H ~controls:[] ~target:0;
      let before = Statevector.to_vec sv in
      Statevector.apply_gate sv g ~controls:[] ~target:(n - 1);
      Statevector.apply_gate sv g ~controls:[] ~target:(n - 1);
      Vec.approx_equal ~eps:1e-10 before (Statevector.to_vec sv))

let prop_unitary_builder_consistent =
  QCheck.Test.make ~name:"matrix path = kernel path" ~count:20
    (QCheck.make QCheck.Gen.(int_range 0 1000))
    (fun seed ->
      let c = Generators.random_circuit ~seed ~depth:2 3 in
      let u = Unitary_builder.unitary c in
      let sv, _ = Statevector.run c in
      let via_matrix = Mat.mul_vec u (Vec.basis ~dim:8 0) in
      Vec.approx_equal ~eps:1e-9 via_matrix (Statevector.to_vec sv))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_norm_preserved; prop_double_application_identity; prop_unitary_builder_consistent ]

let () =
  ignore check_state_phase;
  Alcotest.run "qdt_arraysim"
    [
      ( "statevector",
        [
          Alcotest.test_case "initial state" `Quick test_initial_state;
          Alcotest.test_case "paper example 1" `Quick test_bell_example1;
          Alcotest.test_case "strides" `Quick test_gate_application_strides;
          Alcotest.test_case "diagonal fast paths" `Quick test_diagonal_fast_paths;
          Alcotest.test_case "controlled" `Quick test_controlled_gate;
          Alcotest.test_case "toffoli" `Quick test_toffoli;
          Alcotest.test_case "swap" `Quick test_swap;
          Alcotest.test_case "expectation" `Quick test_expectation_z;
        ] );
      ( "generators",
        [
          Alcotest.test_case "ghz" `Quick test_ghz_semantics;
          Alcotest.test_case "w state" `Quick test_w_state_semantics;
          Alcotest.test_case "qft = dft" `Quick test_qft_matches_dft;
          Alcotest.test_case "grover" `Quick test_grover_amplifies;
          Alcotest.test_case "bernstein-vazirani" `Quick test_bernstein_vazirani;
          Alcotest.test_case "deutsch-jozsa" `Quick test_deutsch_jozsa;
          Alcotest.test_case "cuccaro adder" `Quick test_cuccaro_adder;
          Alcotest.test_case "phase estimation" `Quick test_phase_estimation;
        ] );
      ( "measurement",
        [
          Alcotest.test_case "collapse" `Quick test_measurement_collapse;
          Alcotest.test_case "run+measure" `Quick test_run_with_measurement;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "sampling" `Quick test_sampling;
        ] );
      ( "unitary",
        [
          Alcotest.test_case "bell" `Quick test_unitary_bell;
          Alcotest.test_case "methods agree" `Quick test_unitary_methods_agree;
          Alcotest.test_case "unitarity" `Quick test_unitary_is_unitary;
        ] );
      ( "density",
        [
          Alcotest.test_case "pure" `Quick test_density_pure;
          Alcotest.test_case "matches statevector" `Quick test_density_matches_statevector;
          Alcotest.test_case "depolarizing" `Quick test_depolarizing_mixes;
          Alcotest.test_case "amplitude damping" `Quick test_amplitude_damping;
          Alcotest.test_case "CPTP" `Quick test_channels_trace_preserving;
        ] );
      ("properties", props);
    ]
