(* Tests for the session layer: warm-start cache behavior of the DD
   engine, per-job stats deltas, buffer-reuse bit-identity against cold
   sessions, close semantics, auto routing inside one session, and the
   registry's session table + name suggestions. *)

open Qdt_circuit
module Backend = Qdt.Backend
module Job = Qdt.Job
module Registry = Qdt.Registry
module Vec = Qdt_linalg.Vec

let get_session name =
  match Registry.find_session name with
  | Some m -> m
  | None -> Alcotest.failf "session engine %s not registered" name

let get_backend name =
  match Registry.find name with
  | Some m -> m
  | None -> Alcotest.failf "backend %s not registered" name

let ok name = function
  | Ok (payload, stats) -> (payload, stats)
  | Error e -> Alcotest.failf "%s: %s" name (Backend.error_to_string e)

let dd_of name (stats : Backend.stats) =
  match stats.Backend.dd with
  | Some d -> d
  | None -> Alcotest.failf "%s: dd stats missing" name

let t_heavy = Generators.random_clifford_t ~seed:3 ~gates:120 ~t_fraction:0.3 6

(* ------------------------------------------------------------------ *)
(* Warm start: same-session identical jobs hit the compute cache       *)
(* ------------------------------------------------------------------ *)

let test_dd_warm_start () =
  let (module S : Backend.SESSION) = get_session "decision-diagrams" in
  let s = S.create () in
  let _, st1 = ok "job 1" (S.submit s t_heavy Job.Full_state) in
  let _, st2 = ok "job 2" (S.submit s t_heavy Job.Full_state) in
  S.close s;
  let d1 = dd_of "job 1" st1 and d2 = dd_of "job 2" st2 in
  (* Identical work against warm unique/compute tables: every node
     construction and every cached operation must hit. *)
  Alcotest.(check bool) "cold compute hits partial" true
    (d1.Backend.compute_hit_rate < 1.0);
  Alcotest.(check bool)
    (Printf.sprintf "warm compute hit rate rose (%.3f -> %.3f)"
       d1.Backend.compute_hit_rate d2.Backend.compute_hit_rate)
    true
    (d2.Backend.compute_hit_rate > d1.Backend.compute_hit_rate);
  Alcotest.(check (float 1e-12)) "warm unique-table all hits" 1.0
    d2.Backend.unique_hit_rate

(* ------------------------------------------------------------------ *)
(* Per-job stats are deltas, not cumulative totals                     *)
(* ------------------------------------------------------------------ *)

let test_dd_stats_are_deltas () =
  let saved = !Qdt.Dd.Pkg.default_gc_threshold in
  Fun.protect
    ~finally:(fun () -> Qdt.Dd.Pkg.default_gc_threshold := saved)
    (fun () ->
      (* A tiny GC threshold forces collections inside every job; if the
         reported counters were cumulative, each job would report strictly
         more GC runs and unique lookups than the previous one. *)
      Qdt.Dd.Pkg.default_gc_threshold := 64;
      let (module S : Backend.SESSION) = get_session "decision-diagrams" in
      let s = S.create () in
      let c = Generators.random_clifford_t ~seed:9 ~gates:400 ~t_fraction:0.2 8 in
      let _, st1 = ok "job 1" (S.submit s c Job.Full_state) in
      let _, st2 = ok "job 2" (S.submit s c Job.Full_state) in
      S.close s;
      let d1 = dd_of "job 1" st1 and d2 = dd_of "job 2" st2 in
      Alcotest.(check bool) "job 1 collected" true (d1.Backend.gc_runs > 0);
      Alcotest.(check bool)
        (Printf.sprintf "gc runs per job, not cumulative (%d then %d)"
           d1.Backend.gc_runs d2.Backend.gc_runs)
        true
        (d2.Backend.gc_runs <= d1.Backend.gc_runs))

(* ------------------------------------------------------------------ *)
(* Buffer-reuse paths agree with cold sessions                         *)
(* ------------------------------------------------------------------ *)

let state_of name = function
  | Job.State v -> v
  | _ -> Alcotest.failf "%s: expected a state payload" name

let counts_of name = function
  | Job.Counts counts -> counts
  | _ -> Alcotest.failf "%s: expected a counts payload" name

let test_arrays_buffer_reuse () =
  let (module S : Backend.SESSION) = get_session "arrays" in
  let (module B : Backend.BACKEND) = get_backend "arrays" in
  let a = Generators.qft 6 and b = Generators.w_state 6 in
  let s = S.create () in
  (* Prime the session buffer with a different state, then check the
     reused (reset) buffer reproduces the cold result exactly. *)
  let _ = ok "prime" (S.submit s a Job.Full_state) in
  let warm, _ = ok "warm w(6)" (S.submit s b Job.Full_state) in
  let seeded = Circuit.(empty 3 ~clbits:1 |> h 0 |> measure ~qubit:0 ~clbit:0 |> cx 0 1 |> cx 1 2) in
  let warm_counts, _ = ok "warm sample" (S.submit s seeded (Job.Sample { seed = 11; shots = 64 })) in
  S.close s;
  let cold = match B.simulate b with Ok (v, _) -> v | Error _ -> assert false in
  Alcotest.(check bool) "warm state = cold state (1e-12)" true
    (Vec.approx_equal ~eps:1e-12 (state_of "warm" warm) cold);
  let cold_counts =
    match B.sample ~seed:11 ~shots:64 seeded with Ok (v, _) -> v | Error _ -> assert false
  in
  Alcotest.(check bool) "warm seeded counts = cold counts" true
    (counts_of "warm sample" warm_counts = cold_counts)

let test_stabilizer_tableau_reuse () =
  let (module S : Backend.SESSION) = get_session "stabilizer" in
  let (module B : Backend.BACKEND) = get_backend "stabilizer" in
  let c1 = Generators.random_clifford ~seed:5 ~gates:60 5 in
  let c2 = Generators.random_clifford ~seed:6 ~gates:60 5 in
  let s = S.create () in
  let _ = ok "prime" (S.submit s c1 (Job.Sample { seed = 1; shots = 32 })) in
  let warm, _ = ok "warm" (S.submit s c2 (Job.Sample { seed = 2; shots = 32 })) in
  S.close s;
  let cold =
    match B.sample ~seed:2 ~shots:32 c2 with Ok (v, _) -> v | Error _ -> assert false
  in
  Alcotest.(check bool) "warm tableau counts = cold counts" true
    (counts_of "warm" warm = cold)

let test_dd_warm_matches_cold () =
  let (module S : Backend.SESSION) = get_session "decision-diagrams" in
  let (module B : Backend.BACKEND) = get_backend "decision-diagrams" in
  let s = S.create () in
  let _ = ok "prime" (S.submit s t_heavy Job.Full_state) in
  let warm, _ = ok "warm" (S.submit s t_heavy Job.Full_state) in
  S.close s;
  let cold = match B.simulate t_heavy with Ok (v, _) -> v | Error _ -> assert false in
  Alcotest.(check bool) "warm DD state = cold state (1e-12)" true
    (Vec.approx_equal ~eps:1e-12 (state_of "warm" warm) cold)

(* ------------------------------------------------------------------ *)
(* Close semantics                                                     *)
(* ------------------------------------------------------------------ *)

let test_submit_after_close () =
  List.iter
    (fun name ->
      let (module S : Backend.SESSION) = get_session name in
      let s = S.create () in
      S.close s;
      S.close s (* idempotent *);
      match S.submit s Generators.bell Job.Full_state with
      | Ok _ -> Alcotest.failf "%s: submit after close succeeded" name
      | Error e ->
          Alcotest.(check string) (name ^ " reason") "session is closed"
            e.Backend.reason;
          Alcotest.(check string) (name ^ " backend") name e.Backend.backend)
    (Registry.names ())

(* ------------------------------------------------------------------ *)
(* Auto sessions route per job                                         *)
(* ------------------------------------------------------------------ *)

let test_auto_session_routes () =
  let (module S : Backend.SESSION) = get_session "auto" in
  let s = S.create () in
  let clifford = Generators.random_clifford ~seed:5 ~gates:80 6 in
  let _, st1 = ok "clifford" (S.submit s clifford (Job.Sample { seed = 1; shots = 50 })) in
  let _, st2 = ok "t-heavy" (S.submit s t_heavy Job.Full_state) in
  let _, st3 = ok "clifford again" (S.submit s clifford (Job.Sample { seed = 1; shots = 50 })) in
  S.close s;
  Alcotest.(check string) "clifford -> stabilizer" "stabilizer" st1.Backend.backend;
  Alcotest.(check string) "t-heavy -> dd" "decision-diagrams" st2.Backend.backend;
  Alcotest.(check string) "routes stay per job" "stabilizer" st3.Backend.backend;
  Alcotest.(check bool) "choice logged" true (st1.Backend.note <> None)

(* ------------------------------------------------------------------ *)
(* One-shot shims ride the session layer                               *)
(* ------------------------------------------------------------------ *)

let test_one_shot_shim_is_cold () =
  (* Two one-shot calls are two sessions: the second must not warm-start. *)
  let (module B : Backend.BACKEND) = get_backend "decision-diagrams" in
  let d1 = match B.simulate t_heavy with Ok (_, s) -> dd_of "1" s | Error _ -> assert false in
  let d2 = match B.simulate t_heavy with Ok (_, s) -> dd_of "2" s | Error _ -> assert false in
  Alcotest.(check (float 1e-12)) "identical cold unique-hit rates"
    d1.Backend.unique_hit_rate d2.Backend.unique_hit_rate;
  Alcotest.(check (float 1e-12)) "identical cold compute-hit rates"
    d1.Backend.compute_hit_rate d2.Backend.compute_hit_rate

(* ------------------------------------------------------------------ *)
(* Registry: session table and name suggestions                        *)
(* ------------------------------------------------------------------ *)

let test_registry_sessions_and_suggest () =
  List.iter
    (fun name ->
      if Registry.find_session name = None then
        Alcotest.failf "no session engine for %s" name)
    (Registry.names ());
  Alcotest.(check bool) "unknown session" true
    (Registry.find_session "qubit-frobnicator" = None);
  Alcotest.(check (option string)) "typo suggestion"
    (Some "decision-diagrams")
    (Registry.suggest "decison-digrams");
  Alcotest.(check (option string)) "case-insensitive" (Some "mps") (Registry.suggest "MPS");
  Alcotest.(check (option string)) "nothing close" None (Registry.suggest "qqqqqqqq")

let () =
  Alcotest.run "qdt_session"
    [
      ( "warm-start",
        [
          Alcotest.test_case "dd compute cache" `Quick test_dd_warm_start;
          Alcotest.test_case "per-job deltas" `Quick test_dd_stats_are_deltas;
        ] );
      ( "bit-identity",
        [
          Alcotest.test_case "arrays buffer reuse" `Quick test_arrays_buffer_reuse;
          Alcotest.test_case "stabilizer tableau reuse" `Quick test_stabilizer_tableau_reuse;
          Alcotest.test_case "dd warm = cold" `Quick test_dd_warm_matches_cold;
          Alcotest.test_case "one-shot shims stay cold" `Quick test_one_shot_shim_is_cold;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "submit after close" `Quick test_submit_after_close;
          Alcotest.test_case "auto routes per job" `Quick test_auto_session_routes;
        ] );
      ( "registry",
        [
          Alcotest.test_case "sessions + suggest" `Quick test_registry_sessions_and_suggest;
        ] );
    ]
