(* Tests for the obs analysis layer: Stats (median/MAD/percentile on
   known samples), Profile (hand-built event streams with known
   self/total times, including nested spans, wrapped rings and unclosed
   spans, plus a folded-stacks round trip), Baseline (JSON round trip and
   the regression threshold: a 3x inflated timing must flag, a
   within-noise rerun must not), and the Json parser they rest on. *)

module Stats = Qdt_obs.Stats
module Profile = Qdt_obs.Profile
module Baseline = Qdt_obs.Baseline
module Json = Qdt_obs.Json
module Trace = Qdt_obs.Trace

let feq = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_median () =
  feq "odd" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
  feq "even interpolates" 2.5 (Stats.median [| 4.0; 1.0; 3.0; 2.0 |]);
  feq "single" 7.0 (Stats.median [| 7.0 |]);
  feq "outlier-insensitive" 2.0 (Stats.median [| 1.0; 2.0; 1000.0 |])

let test_mad () =
  (* median 3; |x - 3| = [2;1;0;1;97]; median of that = 1 *)
  feq "known mad" 1.0 (Stats.mad [| 1.0; 2.0; 3.0; 4.0; 100.0 |]);
  feq "constant sample" 0.0 (Stats.mad [| 5.0; 5.0; 5.0 |])

let test_percentile () =
  let s = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  feq "p0 = min" 10.0 (Stats.percentile ~p:0.0 s);
  feq "p100 = max" 50.0 (Stats.percentile ~p:100.0 s);
  feq "p50 = median" 30.0 (Stats.percentile ~p:50.0 s);
  feq "p25 interpolates" 20.0 (Stats.percentile ~p:25.0 s);
  feq "p90 interpolates" 46.0 (Stats.percentile ~p:90.0 s);
  Alcotest.check_raises "empty raises"
    (Invalid_argument "Qdt_obs.Stats.percentile: empty sample array") (fun () ->
      ignore (Stats.percentile ~p:50.0 [||]))

let test_summary_roundtrip () =
  let s = Stats.summary [| 5.0; 1.0; 3.0 |] in
  feq "median" 3.0 s.Stats.median;
  feq "min" 1.0 s.Stats.min;
  feq "max" 5.0 s.Stats.max;
  Alcotest.(check int) "reps" 3 s.Stats.reps;
  match Json.parse (Stats.summary_to_json s) with
  | Error e -> Alcotest.failf "summary json does not parse: %s" e
  | Ok j -> (
      match Stats.summary_of_json j with
      | Error e -> Alcotest.failf "summary json does not decode: %s" e
      | Ok s' ->
          feq "median survives" s.Stats.median s'.Stats.median;
          feq "mad survives" s.Stats.mad s'.Stats.mad;
          Alcotest.(check int) "reps survive" s.Stats.reps s'.Stats.reps)

(* ------------------------------------------------------------------ *)
(* Profile                                                             *)
(* ------------------------------------------------------------------ *)

let ev name ts phase = { Trace.name; ts_ns = ts; phase; attrs = [] }
let b name ts = ev name ts Trace.Begin
let e name ts = ev name ts Trace.End

let row p name =
  match List.find_opt (fun (r : Profile.row) -> r.Profile.name = name) (Profile.rows p) with
  | Some r -> r
  | None -> Alcotest.failf "no row for span %S" name

let test_profile_nested () =
  (* root [0,100] containing child [10,40] and child [50,60]:
     child: count 2, total 40, self 40; root: total 100, self 60 *)
  let p =
    Profile.of_events
      [ b "root" 0; b "child" 10; e "child" 40; b "child" 50; e "child" 60; e "root" 100 ]
  in
  let root = row p "root" and child = row p "child" in
  Alcotest.(check int) "root count" 1 root.Profile.count;
  Alcotest.(check int) "root total" 100 root.Profile.total_ns;
  Alcotest.(check int) "root self" 60 root.Profile.self_ns;
  Alcotest.(check int) "child count" 2 child.Profile.count;
  Alcotest.(check int) "child total" 40 child.Profile.total_ns;
  Alcotest.(check int) "child self" 40 child.Profile.self_ns;
  Alcotest.(check int) "child min" 10 child.Profile.min_ns;
  Alcotest.(check int) "child max" 30 child.Profile.max_ns;
  Alcotest.(check int) "wall = root span" 100 (Profile.total_ns p);
  Alcotest.(check int) "span count" 3 (Profile.span_count p);
  Alcotest.(check int) "no orphans" 0 (Profile.orphan_ends p);
  Alcotest.(check int) "nothing unclosed" 0 (Profile.unclosed p);
  (* self times partition the wall clock *)
  let self_sum =
    List.fold_left (fun acc (r : Profile.row) -> acc + r.Profile.self_ns) 0 (Profile.rows p)
  in
  Alcotest.(check int) "selves sum to total" (Profile.total_ns p) self_sum;
  Alcotest.(check (list (pair string int)))
    "folded paths"
    [ ("root", 60); ("root;child", 40) ]
    (Profile.folded p)

let test_profile_deep_nesting () =
  (* a [0,90] > b [10,80] > c [20,30] and c [40,60] *)
  let p =
    Profile.of_events
      [
        b "a" 0; b "b" 10; b "c" 20; e "c" 30; b "c" 40; e "c" 60; e "b" 80; e "a" 90;
      ]
  in
  Alcotest.(check int) "a self" 20 (row p "a").Profile.self_ns;
  Alcotest.(check int) "b self" 40 (row p "b").Profile.self_ns;
  Alcotest.(check int) "c self" 30 (row p "c").Profile.self_ns;
  Alcotest.(check (list (pair string int)))
    "three-deep folded"
    [ ("a", 20); ("a;b", 40); ("a;b;c", 30) ]
    (Profile.folded p)

let test_profile_wrapped () =
  (* A wrapped ring starts mid-trace: the leading End's Begin was
     overwritten.  It must be counted and skipped, not crash or skew. *)
  let p = Profile.of_events [ e "lost" 5; b "a" 10; e "a" 30 ] in
  Alcotest.(check int) "one orphan end" 1 (Profile.orphan_ends p);
  Alcotest.(check int) "survivor measured" 20 (row p "a").Profile.self_ns;
  Alcotest.(check int) "total from survivors" 20 (Profile.total_ns p)

let test_profile_unclosed () =
  (* Stream ends mid-run: open frames close at the last seen timestamp. *)
  let p = Profile.of_events [ b "a" 0; b "b" 10; b "c" 30 ] in
  Alcotest.(check int) "three unclosed" 3 (Profile.unclosed p);
  Alcotest.(check int) "c closed at last ts, zero length" 0 (row p "c").Profile.total_ns;
  Alcotest.(check int) "b spans to last ts" 20 (row p "b").Profile.total_ns;
  Alcotest.(check int) "b self excludes c" 20 (row p "b").Profile.self_ns;
  Alcotest.(check int) "a spans to last ts" 30 (row p "a").Profile.total_ns;
  Alcotest.(check int) "a self excludes b" 10 (row p "a").Profile.self_ns;
  Alcotest.(check int) "total still root-based" 30 (Profile.total_ns p)

let test_profile_empty () =
  let p = Profile.of_events [] in
  Alcotest.(check int) "no spans" 0 (Profile.span_count p);
  Alcotest.(check int) "no time" 0 (Profile.total_ns p);
  Alcotest.(check (list (pair string int))) "no stacks" [] (Profile.folded p);
  Alcotest.(check bool) "render does not fail" true (String.length (Profile.render p) > 0)

(* Parse folded-stacks text back and check it reproduces the profile's
   totals: every line is "path self", selves sum to total_ns, and the
   per-name sums match the rows. *)
let test_folded_roundtrip () =
  let events =
    [
      b "run" 0;
      b "gate" 10; b "gc" 20; e "gc" 50; e "gate" 70;
      b "gate" 80; e "gate" 130;
      b "sample" 140; e "sample" 190;
      e "run" 200;
    ]
  in
  let p = Profile.of_events events in
  let parsed =
    Profile.folded_stacks p |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (fun line ->
           match String.rindex_opt line ' ' with
           | None -> Alcotest.failf "malformed folded line %S" line
           | Some i ->
               ( String.sub line 0 i,
                 int_of_string (String.sub line (i + 1) (String.length line - i - 1)) ))
  in
  Alcotest.(check int)
    "selves sum to wall clock" (Profile.total_ns p)
    (List.fold_left (fun acc (_, s) -> acc + s) 0 parsed);
  (* per-name self from the folded view (leaf of each path) = row self *)
  let leaf path =
    match List.rev (String.split_on_char ';' path) with
    | leaf :: _ -> leaf
    | [] -> Alcotest.failf "empty path"
  in
  List.iter
    (fun (r : Profile.row) ->
      let from_folded =
        List.fold_left
          (fun acc (path, s) -> if leaf path = r.Profile.name then acc + s else acc)
          0 parsed
      in
      Alcotest.(check int)
        (Printf.sprintf "folded self of %s" r.Profile.name)
        r.Profile.self_ns from_folded)
    (List.filter (fun (r : Profile.row) -> r.Profile.self_ns > 0) (Profile.rows p))

(* The profile of a real traced run: record through the Trace ring and
   check the aggregate is balanced and the root covers the run. *)
let test_profile_of_real_trace () =
  Trace.configure ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.clear ())
    (fun () ->
      Trace.with_span "root" (fun () ->
          for _ = 1 to 10 do
            Trace.with_span "work" (fun () -> ignore (Sys.opaque_identity (Array.make 100 0)))
          done);
      let p = Profile.of_events (Trace.events ()) in
      Alcotest.(check int) "11 spans" 11 (Profile.span_count p);
      Alcotest.(check int) "no orphans" 0 (Profile.orphan_ends p);
      Alcotest.(check int) "none unclosed" 0 (Profile.unclosed p);
      let root = row p "root" in
      Alcotest.(check int) "root is the wall clock" (Profile.total_ns p) root.Profile.total_ns;
      Alcotest.(check int) "work count" 10 (row p "work").Profile.count)

(* ------------------------------------------------------------------ *)
(* Json parser                                                         *)
(* ------------------------------------------------------------------ *)

let test_json_parse () =
  (match Json.parse {|{"a": [1, 2.5, -3e2], "b": "x\ny", "c": true, "d": null}|} with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j -> (
      (match Json.member "a" j with
      | Some (Json.Array [ Json.Number a; Json.Number b; Json.Number c ]) ->
          feq "int" 1.0 a;
          feq "float" 2.5 b;
          feq "exponent" (-300.0) c
      | _ -> Alcotest.fail "array decode");
      (match Option.bind (Json.member "b" j) Json.to_string with
      | Some s -> Alcotest.(check string) "escape decode" "x\ny" s
      | None -> Alcotest.fail "string decode");
      match Option.bind (Json.member "c" j) Json.to_bool with
      | Some v -> Alcotest.(check bool) "bool" true v
      | None -> Alcotest.fail "bool decode"));
  (match Json.parse "{\"a\": }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted malformed object");
  match Json.parse "[1, 2] trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted trailing garbage"

(* ------------------------------------------------------------------ *)
(* Baseline                                                            *)
(* ------------------------------------------------------------------ *)

let summary ~median ~mad ~min ~max ~reps = { Stats.median; mad; min; max; reps }

let baseline =
  {
    Baseline.experiment = "unit";
    smoke = true;
    timings =
      [
        {
          Baseline.label = "unit/fast";
          timing = summary ~median:1000.0 ~mad:50.0 ~min:900.0 ~max:1100.0 ~reps:5;
        };
        {
          Baseline.label = "unit/steady";
          timing = summary ~median:5.0e6 ~mad:0.0 ~min:5.0e6 ~max:5.0e6 ~reps:5;
        };
      ];
  }

let current ~label ~scale =
  {
    Baseline.experiment = "unit";
    smoke = true;
    timings =
      [
        {
          Baseline.label;
          timing =
            summary ~median:(1000.0 *. scale) ~mad:40.0 ~min:(950.0 *. scale)
              ~max:(1050.0 *. scale) ~reps:5;
        };
      ];
  }

let test_baseline_roundtrip () =
  let path = Filename.temp_file "qdt_baseline" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Baseline.write ~path baseline;
      match Baseline.read ~path with
      | Error e -> Alcotest.failf "read back failed: %s" e
      | Ok t ->
          Alcotest.(check string) "experiment" "unit" t.Baseline.experiment;
          Alcotest.(check bool) "smoke" true t.Baseline.smoke;
          Alcotest.(check int) "timings" 2 (List.length t.Baseline.timings);
          let fast =
            List.find (fun (e : Baseline.entry) -> e.Baseline.label = "unit/fast") t.Baseline.timings
          in
          feq "median survives" 1000.0 fast.Baseline.timing.Stats.median;
          feq "mad survives" 50.0 fast.Baseline.timing.Stats.mad)

(* The acceptance criterion: artificially inflating a timing 3x must
   report a regression; a rerun within noise must not. *)
let test_regression_detected () =
  let cmp =
    Baseline.compare ~baseline ~current:(current ~label:"unit/fast" ~scale:3.0) ()
  in
  Alcotest.(check bool) "3x inflation flags" true cmp.Baseline.any_regressed;
  match cmp.Baseline.verdicts with
  | [ v ] ->
      Alcotest.(check bool) "verdict regressed" true v.Baseline.regressed;
      feq "threshold = max(2x median, median + 5 mad)" 2000.0 v.Baseline.threshold_ns;
      Alcotest.(check bool) "render mentions it" true
        (let s = Baseline.render cmp in
         let needle = "REGRESSED" in
         let rec contains i =
           i + String.length needle <= String.length s
           && (String.sub s i (String.length needle) = needle || contains (i + 1))
         in
         contains 0)
  | _ -> Alcotest.fail "expected one verdict"

let test_no_false_positive () =
  let cmp =
    Baseline.compare ~baseline ~current:(current ~label:"unit/fast" ~scale:1.1) ()
  in
  Alcotest.(check bool) "10% drift passes" false cmp.Baseline.any_regressed;
  (* MAD-scaled headroom: a baseline with mad = 0 still gets the ratio floor *)
  let noisy =
    Baseline.compare ~baseline
      ~current:
        {
          Baseline.experiment = "unit";
          smoke = true;
          timings =
            [
              {
                Baseline.label = "unit/steady";
                timing = summary ~median:9.0e6 ~mad:1.0e5 ~min:9.9e6 ~max:1.0e7 ~reps:3;
              };
            ];
        }
      ()
  in
  (* best rep 9.9e6 < threshold 1.0e7 would pass; here min > 2x median flags *)
  Alcotest.(check bool) "zero-mad baseline uses ratio floor" false
    (Baseline.threshold (List.nth baseline.Baseline.timings 1).Baseline.timing < 1.0e7);
  ignore noisy

let test_one_sided_labels () =
  let cmp =
    Baseline.compare ~baseline ~current:(current ~label:"unit/brand-new" ~scale:1.0) ()
  in
  Alcotest.(check bool) "new timing never gates" false cmp.Baseline.any_regressed;
  Alcotest.(check (list string)) "new label reported" [ "unit/brand-new" ]
    cmp.Baseline.only_in_current;
  Alcotest.(check (list string))
    "missing labels reported"
    [ "unit/fast"; "unit/steady" ]
    (List.sort compare cmp.Baseline.only_in_baseline)

let test_min_gating_rejects_noise () =
  (* One noisy rep inflates median past the threshold but the best rep is
     clean: must NOT flag (the property that makes the gate usable on
     shared machines). *)
  let cmp =
    Baseline.compare ~baseline
      ~current:
        {
          Baseline.experiment = "unit";
          smoke = true;
          timings =
            [
              {
                Baseline.label = "unit/fast";
                timing = summary ~median:2500.0 ~mad:800.0 ~min:1050.0 ~max:4000.0 ~reps:3;
              };
            ];
        }
      ()
  in
  Alcotest.(check bool) "clean best rep passes" false cmp.Baseline.any_regressed

let () =
  Alcotest.run "qdt_profile"
    [
      ( "stats",
        [
          Alcotest.test_case "median" `Quick test_median;
          Alcotest.test_case "mad" `Quick test_mad;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "summary json round trip" `Quick test_summary_roundtrip;
        ] );
      ( "profile",
        [
          Alcotest.test_case "nested self/total" `Quick test_profile_nested;
          Alcotest.test_case "deep nesting" `Quick test_profile_deep_nesting;
          Alcotest.test_case "wrapped ring" `Quick test_profile_wrapped;
          Alcotest.test_case "unclosed spans" `Quick test_profile_unclosed;
          Alcotest.test_case "empty stream" `Quick test_profile_empty;
          Alcotest.test_case "folded round trip" `Quick test_folded_roundtrip;
          Alcotest.test_case "real traced run" `Quick test_profile_of_real_trace;
        ] );
      ("json", [ Alcotest.test_case "parse" `Quick test_json_parse ]);
      ( "baseline",
        [
          Alcotest.test_case "file round trip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "3x inflation regresses" `Quick test_regression_detected;
          Alcotest.test_case "no false positive in noise" `Quick test_no_false_positive;
          Alcotest.test_case "one-sided labels" `Quick test_one_sided_labels;
          Alcotest.test_case "min-gating rejects noisy median" `Quick test_min_gating_rejects_noise;
        ] );
    ]
