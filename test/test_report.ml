(* Run-report artifacts (ISSUE 8): the Report bracket must produce one
   self-contained JSON value that survives a round-trip through the
   in-tree parser, watermarks must behave as per-run running maxima, and
   the reset-semantics contract (everything back to zero after the
   bracket closes) must hold — including the parallel pool's domain
   gauge after [shutdown]. *)

module Metrics = Qdt_obs.Metrics
module Watermark = Qdt_obs.Watermark
module Report = Qdt_obs.Report
module Json = Qdt_obs.Json

(* Scrub observability state around each test so order does not matter. *)
let isolated f () =
  Metrics.reset ();
  Watermark.reset ();
  let m = Metrics.enabled () and w = Watermark.enabled () in
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled m;
      Watermark.set_enabled w;
      Metrics.reset ();
      Watermark.reset ())
    f

let parse_ok ~what s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "%s is not valid JSON: %s" what e

let number ~what j name =
  match Option.bind (Json.member name j) Json.to_number with
  | Some v -> v
  | None -> Alcotest.failf "%s: missing numeric field %S" what name

(* ------------------------------------------------------------------ *)
(* Watermarks                                                          *)
(* ------------------------------------------------------------------ *)

let test_watermark_monotone =
  isolated @@ fun () ->
  Watermark.set_enabled true;
  let w = Watermark.watermark "test.peak" in
  Watermark.observe w 3.0;
  Watermark.observe w 1.0;
  Alcotest.(check (float 0.0)) "lower observation ignored" 3.0 (Watermark.peak w);
  Watermark.observe_int w 7;
  Alcotest.(check (float 0.0)) "raised to new max" 7.0 (Watermark.peak w);
  Alcotest.(check bool) "in snapshot" true
    (List.mem_assoc "test.peak" (Watermark.snapshot ()));
  Watermark.reset ();
  Alcotest.(check (float 0.0)) "zero after reset" 0.0 (Watermark.peak w);
  Watermark.set_enabled false;
  Watermark.observe w 9.0;
  Alcotest.(check (float 0.0)) "disabled observation dropped" 0.0 (Watermark.peak w)

(* Concurrent CAS-max: the final peak is the global max, never a lost
   update from a racing lower value. *)
let test_watermark_domains =
  isolated @@ fun () ->
  Watermark.set_enabled true;
  let w = Watermark.watermark "test.peak.par" in
  let worker base () =
    for i = 1 to 10_000 do
      Watermark.observe_int w (base + i)
    done
  in
  let d1 = Domain.spawn (worker 0) and d2 = Domain.spawn (worker 5_000) in
  worker 2_500 ();
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check (float 0.0)) "global max" 15_000.0 (Watermark.peak w)

(* ------------------------------------------------------------------ *)
(* Report bracket                                                      *)
(* ------------------------------------------------------------------ *)

let test_report_roundtrip =
  isolated @@ fun () ->
  let t = Report.start () in
  (* Work scoped to the run: a labeled counter and a watermark peak. *)
  Metrics.incr (Metrics.counter_with ~labels:[ ("backend", "dd") ] "test.report.runs");
  Watermark.observe_int (Watermark.watermark "test.report.peak") 42;
  Report.add_section t ~name:"circuit" ~json:{|{"qubits": 2, "gates": 3}|};
  let json = Report.finish t in
  Alcotest.(check string) "finish is idempotent" json (Report.finish t);
  let j = parse_ok ~what:"report" json in
  (match Option.bind (Json.member "schema" j) Json.to_string with
  | Some s -> Alcotest.(check string) "schema" Report.schema s
  | None -> Alcotest.fail "report lacks schema field");
  Alcotest.(check bool) "wall_s >= 0" true (number ~what:"report" j "wall_s" >= 0.0);
  (match Json.member "circuit" j with
  | Some c ->
      Alcotest.(check (float 0.0)) "section embedded verbatim" 2.0
        (number ~what:"circuit section" c "qubits")
  | None -> Alcotest.fail "caller section missing");
  (match Json.member "watermarks" j with
  | Some wm ->
      Alcotest.(check (float 0.0)) "watermark peak recorded" 42.0
        (number ~what:"watermarks" wm "test.report.peak")
  | None -> Alcotest.fail "watermarks section missing");
  (match Json.member "metrics" j with
  | Some m ->
      Alcotest.(check (float 0.0)) "run-scoped metrics diff" 1.0
        (number ~what:"metrics" m {|test.report.runs{backend="dd"}|})
  | None -> Alcotest.fail "metrics section missing");
  (* Reset-semantics contract: the bracket leaves no residue. *)
  Alcotest.(check (float 0.0)) "watermarks zero after finish" 0.0
    (Watermark.peak (Watermark.watermark "test.report.peak"));
  (* And the artifact renders without raising. *)
  Alcotest.(check bool) "render is non-empty" true
    (String.length (Report.render json) > 0)

let test_report_crash =
  isolated @@ fun () ->
  let t = Report.start () in
  Report.add_section t ~name:"invocation" ~json:{|{"backend": "auto"}|};
  let json = Report.crash t ~error:"boom \"quoted\"" ~backtrace:"frame 0\nframe 1" in
  let j = parse_ok ~what:"crash report" json in
  match Json.member "error" j with
  | None -> Alcotest.fail "crash report lacks error section"
  | Some e ->
      (match Option.bind (Json.member "message" e) Json.to_string with
      | Some msg -> Alcotest.(check string) "message survives escaping" "boom \"quoted\"" msg
      | None -> Alcotest.fail "error section lacks message");
      Alcotest.(check (float 0.0)) "watermarks zero after crash" 0.0
        (Watermark.peak (Watermark.watermark "test.report.peak"))

(* ------------------------------------------------------------------ *)
(* Snapshots and atomic writes (ISSUE 10)                              *)
(* ------------------------------------------------------------------ *)

(* [snapshot] must yield a complete artifact without closing the
   bracket: switches stay on, watermarks keep accumulating, and the
   eventual [finish] sees everything since [start]. *)
let test_report_snapshot =
  isolated @@ fun () ->
  let t = Report.start () in
  let w = Watermark.watermark "test.snapshot.peak" in
  Watermark.observe w 5.0;
  let s1 = Report.snapshot t in
  let j1 = parse_ok ~what:"first snapshot" s1 in
  (match Json.member "watermarks" j1 with
  | Some wm ->
      Alcotest.(check (float 0.0)) "peak in snapshot" 5.0
        (number ~what:"watermarks" wm "test.snapshot.peak")
  | None -> Alcotest.fail "watermarks section missing");
  Alcotest.(check bool) "bracket still live" true (Metrics.enabled ());
  Watermark.observe w 9.0;
  let s2 = Report.snapshot t in
  let j2 = parse_ok ~what:"second snapshot" s2 in
  (match Json.member "watermarks" j2 with
  | Some wm ->
      Alcotest.(check (float 0.0)) "later peak visible" 9.0
        (number ~what:"watermarks" wm "test.snapshot.peak")
  | None -> Alcotest.fail "watermarks section missing");
  let sealed = Report.finish t in
  Alcotest.(check string) "snapshot after finish returns the sealed artifact"
    sealed (Report.snapshot t)

let read_file path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* write-to-temp-then-rename: the final document lands whole and the
   temp file does not survive. *)
let test_write_file_atomic =
  isolated @@ fun () ->
  let t = Report.start () in
  let json = Report.finish t in
  let path = Filename.temp_file "qdt_report" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Report.write_file path json;
      Report.write_file path json;
      Alcotest.(check bool) "no temp file left" false
        (Sys.file_exists (path ^ ".tmp"));
      Alcotest.(check string) "document written whole" (json ^ "\n")
        (read_file path);
      ignore (parse_ok ~what:"written report" (String.trim (read_file path))))

(* ------------------------------------------------------------------ *)
(* Pool shutdown resets its gauge (ISSUE 8 satellite 3)                *)
(* ------------------------------------------------------------------ *)

let test_domains_gauge_reset =
  isolated @@ fun () ->
  Metrics.set_enabled true;
  let saved = Qdt_par.jobs () in
  Fun.protect
    ~finally:(fun () ->
      Qdt_par.set_jobs saved;
      Qdt_par.shutdown ())
    (fun () ->
      Qdt_par.set_jobs 2;
      let hit = Atomic.make 0 in
      Qdt_par.parallel_for ~chunk:1 0 8 (fun lo hi ->
          Atomic.fetch_and_add hit (hi - lo) |> ignore);
      Alcotest.(check int) "work ran" 8 (Atomic.get hit);
      let gauge () =
        match List.assoc_opt "qdt.par.domains" (Metrics.snapshot ()) with
        | Some (Metrics.Gauge_v v) -> v
        | _ -> Alcotest.fail "qdt.par.domains gauge missing"
      in
      Alcotest.(check (float 0.0)) "gauge counts pool while up" 2.0 (gauge ());
      Qdt_par.shutdown ();
      Alcotest.(check int) "no worker domains remain" 0 (Qdt_par.spawned_domains ());
      Alcotest.(check (float 0.0)) "gauge reads 0 after shutdown" 0.0 (gauge ()))

let () =
  Alcotest.run "qdt_report"
    [
      ( "watermark",
        [
          Alcotest.test_case "monotone + reset" `Quick test_watermark_monotone;
          Alcotest.test_case "concurrent max" `Quick test_watermark_domains;
        ] );
      ( "report",
        [
          Alcotest.test_case "round-trip" `Quick test_report_roundtrip;
          Alcotest.test_case "crash artifact" `Quick test_report_crash;
          Alcotest.test_case "live snapshot" `Quick test_report_snapshot;
          Alcotest.test_case "atomic write" `Quick test_write_file_atomic;
        ] );
      ( "par",
        [ Alcotest.test_case "domains gauge reset" `Quick test_domains_gauge_reset ] );
    ]
