(* Benchmark harness: regenerates every figure/example of the paper (E1-E4)
   and every qualitative claim of its survey (E5-E10) as measurable tables.
   Experiment ids follow DESIGN.md; measured-vs-paper is recorded in
   EXPERIMENTS.md.

   Run with:  dune exec bench/main.exe                 (all experiments)
              dune exec bench/main.exe -- e16          (one experiment)
              dune exec bench/main.exe -- e16 --smoke  (small sizes, CI)
              dune exec bench/main.exe -- e18 --smoke --reps 3 --compare
                                        (gate against bench/baselines/)

   Every timing is measured --reps times (default 5, 3 under --smoke)
   and summarised as {median, mad, min, max, reps} — Qdt_obs.Stats —
   so BENCH_<id>.json carries a noise model, not one number.  --compare
   diffs the summaries against the committed bench/baselines/<id>.json
   with a MAD-scaled threshold (Qdt_obs.Baseline) and exits nonzero on
   regression; --update-baselines blesses the current run instead.

   Each experiment additionally writes machine-readable results to
   BENCH_<id>.json in the working directory: every timing summary, any
   experiment-specific metrics (e.g. e16's GC counters), and the full
   Qdt_obs metrics registry accumulated while the experiment ran. *)

module Circuit = Qdt.Circuit.Circuit
module Generators = Qdt.Circuit.Generators
module Vec = Qdt.Linalg.Vec
module Cx = Qdt.Linalg.Cx
module Stats = Qdt.Obs.Stats
module Baseline = Qdt.Obs.Baseline

(* ------------------------------------------------------------------ *)
(* Machine-readable results (BENCH_<id>.json)                          *)
(* ------------------------------------------------------------------ *)

(* Accumulated per experiment, reset by the driver before each run. *)
let json_timings : (string * Stats.summary) list ref = ref []
let json_metrics : (string * string) list ref = ref []

(* Timing repetitions per test; the driver sets this from --reps (default
   5, or 3 under --smoke).  e17/e18's internal best-of loops use it too. *)
let reps_flag = ref 5

(* [metric key json] records one experiment-specific value; [json] must
   already be a serialised JSON value (number, string, object, ...). *)
let metric key json = json_metrics := (key, json) :: !json_metrics
let metric_int key v = metric key (string_of_int v)
let metric_float key v = metric key (Printf.sprintf "%.6g" v)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json ~experiment ~smoke ~report =
  let file = Printf.sprintf "BENCH_%s.json" experiment in
  let oc = open_out file in
  let field (k, v) = Printf.sprintf "    \"%s\": %s" (json_escape k) v in
  let obj entries = String.concat ",\n" (List.map field entries) in
  Printf.fprintf oc "{\n  \"experiment\": \"%s\",\n  \"smoke\": %b,\n" (json_escape experiment) smoke;
  Printf.fprintf oc "  \"timings_ns\": {\n%s\n  },\n"
    (obj (List.rev_map (fun (k, s) -> (k, Stats.summary_to_json s)) !json_timings));
  Printf.fprintf oc "  \"metrics\": {\n%s\n  },\n" (obj (List.rev !json_metrics));
  (* The run report bracketing this experiment (wall/heap, run-scoped
     metrics diff, watermark peaks) — the same artifact `qdt simulate
     --report` emits, so bench output is queryable with the same tools. *)
  Printf.fprintf oc "  \"report\": %s,\n" report;
  (* Everything the Qdt_obs registry accumulated while this experiment ran
     (the driver resets it per experiment). *)
  Printf.fprintf oc "  \"obs_metrics\": %s\n}\n"
    (Qdt.Obs.Metrics.to_json (Qdt.Obs.Metrics.snapshot ()));
  close_out oc;
  Printf.printf "wrote %s\n" file

(* ------------------------------------------------------------------ *)
(* Timing machinery                                                    *)
(* ------------------------------------------------------------------ *)

(* Each timing is sampled [!reps_flag] times and summarised by
   median/MAD (Qdt_obs.Stats) — robust against the heavy-tailed noise of
   preemption and GC.  Fast thunks are batched: the batch size doubles
   until one batch runs >= 1 ms, so a sample is never dominated by clock
   granularity; each sample is then batch time / batch size. *)

let calibration_target_ns = 1_000_000
let max_batch = 65_536

let time_batch fn iters =
  let t0 = Qdt.Obs.Clock.now_ns () in
  for _ = 1 to iters do
    ignore (Sys.opaque_identity (fn ()))
  done;
  Qdt.Obs.Clock.elapsed_ns t0

let calibrate fn =
  let iters = ref 1 in
  let continue_ = ref true in
  while !continue_ do
    let dt = time_batch fn !iters in
    if dt >= calibration_target_ns || !iters >= max_batch then continue_ := false
    else iters := !iters * 2
  done;
  !iters

let measure_summary ~reps fn =
  ignore (Sys.opaque_identity (fn ())) (* warm up *);
  let iters = calibrate fn in
  let samples =
    Array.init (max 1 reps) (fun _ ->
        float_of_int (time_batch fn iters) /. float_of_int iters)
  in
  (Stats.summary samples, iters)

let pretty_ns ns =
  if ns > 1e9 then Printf.sprintf "%8.3f s " (ns /. 1e9)
  else if ns > 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%8.3f us" (ns /. 1e3)
  else Printf.sprintf "%8.1f ns" ns

let run_timings ~name tests =
  List.iter
    (fun (test_name, fn) ->
      let label = name ^ "/" ^ test_name in
      let s, iters = measure_summary ~reps:!reps_flag fn in
      json_timings := (label, s) :: !json_timings;
      Printf.printf "  %-44s %s  ± %-10s (%d reps × %d)\n" label
        (pretty_ns s.Stats.median)
        (String.trim (pretty_ns s.Stats.mad))
        s.Stats.reps iters)
    tests

let bench name fn = (name, fun () -> fn ())

let header id title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s — %s\n" id title;
  Printf.printf "================================================================\n"

(* ------------------------------------------------------------------ *)
(* E1: arrays on the Bell example (Example 1 / Section II)             *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1" "Example 1: CNOT · (superposed register) = Bell state (arrays)";
  let sv = Qdt.Arrays.Statevector.run_unitary Generators.bell in
  Printf.printf "final amplitudes: ";
  Vec.iteri
    (fun k amp -> Printf.printf "a%d=%s " k (Cx.to_string amp))
    (Qdt.Arrays.Statevector.to_vec sv);
  Printf.printf "\np(|00>) = %.4f, p(|11>) = %.4f (paper: 1/2 each)\n"
    (Qdt.Arrays.Statevector.probability sv 0)
    (Qdt.Arrays.Statevector.probability sv 3);
  run_timings ~name:"e1"
    [
      bench "array-bell-simulation" (fun () ->
          ignore (Qdt.Arrays.Statevector.run_unitary Generators.bell));
      bench "array-bell-unitary-4x4" (fun () ->
          ignore (Qdt.Arrays.Unitary_builder.unitary Generators.bell));
    ]

(* ------------------------------------------------------------------ *)
(* E2: decision diagram of the Bell state (Fig. 1 / Section III)       *)
(* ------------------------------------------------------------------ *)

let e2 () =
  header "E2" "Fig. 1: the Bell state as a decision diagram";
  let dd = Qdt.Dd.Sim.run_unitary Generators.bell in
  Printf.printf "DD nodes: %d (Fig. 1b draws 3: one q1, two q0)\n"
    (Qdt.Dd.Sim.node_count dd);
  Printf.printf "amplitude |00> from path weights: %s (paper: 1/sqrt2)\n"
    (Cx.to_string (Qdt.Dd.Sim.amplitude dd 0));
  Printf.printf "amplitude |01>: %s (0-stub)\n" (Cx.to_string (Qdt.Dd.Sim.amplitude dd 1));
  run_timings ~name:"e2"
    [
      bench "dd-manager-create" (fun () -> ignore (Qdt.Dd.Pkg.create ()));
      bench "dd-bell-simulation" (fun () ->
          ignore (Qdt.Dd.Sim.run_unitary Generators.bell));
      bench "dd-bell-sample-1000" (fun () ->
          let st = Qdt.Dd.Sim.run_unitary Generators.bell in
          ignore (Qdt.Dd.Sim.sample st ~shots:1000));
    ]

(* ------------------------------------------------------------------ *)
(* E3: tensor network of the Bell circuit (Fig. 2 / Examples 3-4)      *)
(* ------------------------------------------------------------------ *)

let e3 () =
  header "E3" "Fig. 2: the Bell circuit as a tensor network";
  let tn = Qdt.Tensornet.Circuit_tn.of_circuit Generators.bell in
  Printf.printf "tensors: %d, network bytes: %d (linear in gates+qubits)\n"
    (Qdt.Tensornet.Network.tensor_count (Qdt.Tensornet.Circuit_tn.network tn))
    (Qdt.Tensornet.Circuit_tn.memory_bytes tn);
  let amp, stats = Qdt.Tensornet.Circuit_tn.amplitude tn 3 in
  Printf.printf "amplitude <11|C|00> by fixing output indices: %s\n" (Cx.to_string amp);
  Printf.printf "contraction: %d multiplications, peak tensor %d entries, %d pairwise steps\n"
    stats.Qdt.Tensornet.Network.multiplications
    stats.Qdt.Tensornet.Network.peak_tensor_size stats.Qdt.Tensornet.Network.contractions;
  run_timings ~name:"e3"
    [
      bench "tn-bell-amplitude" (fun () ->
          ignore (Qdt.Tensornet.Circuit_tn.amplitude tn 3));
      bench "tn-bell-full-state" (fun () ->
          ignore (Qdt.Tensornet.Circuit_tn.statevector tn));
    ]

(* ------------------------------------------------------------------ *)
(* E4: ZX-diagram of the Bell circuit (Fig. 3 / Example 5)             *)
(* ------------------------------------------------------------------ *)

let e4 () =
  header "E4" "Fig. 3: the Bell circuit in the ZX-calculus";
  let d = Qdt.Zx.Translate.of_circuit Generators.bell in
  Printf.printf "diagram: %d spiders, %d edges\n"
    (List.length (Qdt.Zx.Diagram.spiders d))
    (Qdt.Zx.Diagram.num_edges d);
  let d2 = Qdt.Zx.Translate.of_circuit Generators.bell in
  ignore (Qdt.Zx.Simplify.full_reduce d2);
  Printf.printf "graph-like + reduced: %d spiders (Fig. 3c: 2 spiders + H edge)\n"
    (List.length (Qdt.Zx.Diagram.spiders d2));
  Printf.printf "C;C† reduces to bare wires: %b (diagrammatic equivalence proof)\n"
    (let e = Qdt.Zx.Translate.equivalence_diagram Generators.bell Generators.bell in
     ignore (Qdt.Zx.Simplify.full_reduce e);
     Qdt.Zx.Simplify.is_identity e);
  run_timings ~name:"e4"
    [
      bench "zx-bell-translate" (fun () ->
          ignore (Qdt.Zx.Translate.of_circuit Generators.bell));
      bench "zx-bell-full-reduce" (fun () ->
          let d = Qdt.Zx.Translate.of_circuit Generators.bell in
          ignore (Qdt.Zx.Simplify.full_reduce d));
    ]

(* ------------------------------------------------------------------ *)
(* E5: memory scaling (Section II claim: arrays are exponential)       *)
(* ------------------------------------------------------------------ *)

let e5 () =
  header "E5" "Memory scaling: arrays double per qubit, DDs/TNs exploit structure";
  Printf.printf "%4s | %16s | %9s | %12s | %12s\n" "n" "array (bytes)" "DD nodes"
    "TN (bytes)" "MPS (bytes)";
  List.iter
    (fun n ->
      let ghz = Generators.ghz n in
      let dd = Qdt.Dd.Sim.run_unitary ghz in
      let tn = Qdt.Tensornet.Circuit_tn.memory_bytes (Qdt.Tensornet.Circuit_tn.of_circuit ghz) in
      let mps = Qdt.Tensornet.Mps.memory_bytes (Qdt.Tensornet.Mps.run ghz) in
      Printf.printf "%4d | %16d | %9d | %12d | %12d\n" n (16 * (1 lsl n))
        (Qdt.Dd.Sim.node_count dd) tn mps)
    [ 4; 8; 12; 16; 20 ];
  Printf.printf "extrapolated array footprint at n=50: %.1e bytes (the paper's '<50 qubits' limit)\n"
    (16.0 *. (2.0 ** 50.0));
  Printf.printf "\nunstructured (random) states: the DD advantage disappears\n";
  List.iter
    (fun n ->
      let c = Generators.random_circuit ~seed:1 ~depth:4 n in
      let dd = Qdt.Dd.Sim.run_unitary c in
      Printf.printf "  n=%-3d DD nodes=%-7d array amplitudes=%d\n" n
        (Qdt.Dd.Sim.node_count dd) (1 lsl n))
    [ 6; 10; 14 ];
  run_timings ~name:"e5"
    [
      bench "ghz18-array" (fun () ->
          ignore (Qdt.Arrays.Statevector.run_unitary (Generators.ghz 18)));
      bench "ghz18-dd" (fun () ->
          ignore (Qdt.Dd.Sim.run_unitary (Generators.ghz 18)));
      bench "ghz18-mps" (fun () ->
          ignore (Qdt.Tensornet.Mps.run (Generators.ghz 18)));
    ]

(* ------------------------------------------------------------------ *)
(* E6: simulation backends on structured workloads (Section III)       *)
(* ------------------------------------------------------------------ *)

let e6 () =
  header "E6" "Simulation: arrays vs decision diagrams on GHZ / QFT / Grover";
  Printf.printf "final-representation size (DD nodes vs array amplitudes):\n";
  List.iter
    (fun (name, c) ->
      let dd = Qdt.Dd.Sim.run_unitary c in
      Printf.printf "  %-12s n=%-3d DD nodes=%-6d amplitudes=%d\n" name
        (Circuit.num_qubits c) (Qdt.Dd.Sim.node_count dd)
        (1 lsl Circuit.num_qubits c))
    [
      ("ghz(16)", Generators.ghz 16);
      ("w(16)", Generators.w_state 16);
      ("qft(12)", Generators.qft 12);
      ("grover(10)", Generators.grover ~marked:37 10);
      ("random(12)", Generators.random_circuit ~seed:3 ~depth:4 12);
    ];
  run_timings ~name:"e6"
    [
      bench "qft12-array" (fun () ->
          ignore (Qdt.Arrays.Statevector.run_unitary (Generators.qft 12)));
      bench "qft12-dd" (fun () ->
          ignore (Qdt.Dd.Sim.run_unitary (Generators.qft 12)));
      bench "grover8-array" (fun () ->
          ignore (Qdt.Arrays.Statevector.run_unitary (Generators.grover ~marked:5 8)));
      bench "grover8-dd" (fun () ->
          ignore (Qdt.Dd.Sim.run_unitary (Generators.grover ~marked:5 8)));
      bench "random10-array" (fun () ->
          ignore
            (Qdt.Arrays.Statevector.run_unitary (Generators.random_circuit ~seed:2 ~depth:4 10)));
      bench "random10-dd" (fun () ->
          ignore (Qdt.Dd.Sim.run_unitary (Generators.random_circuit ~seed:2 ~depth:4 10)));
    ]

(* ------------------------------------------------------------------ *)
(* E7: tensor networks for single quantities (Section IV)              *)
(* ------------------------------------------------------------------ *)

let e7 () =
  header "E7" "Tensor networks: one amplitude vs the whole state";
  let n = 14 in
  let ghz = Generators.ghz n in
  let tn = Qdt.Tensornet.Circuit_tn.of_circuit ghz in
  let _, amp_stats = Qdt.Tensornet.Circuit_tn.amplitude tn ((1 lsl n) - 1) in
  Printf.printf "GHZ(%d) single amplitude: %d mults, peak tensor %d entries\n" n
    amp_stats.Qdt.Tensornet.Network.multiplications
    amp_stats.Qdt.Tensornet.Network.peak_tensor_size;
  Printf.printf "  (full state vector would hold %d complex entries)\n" (1 lsl n);
  let tn_r = Qdt.Tensornet.Circuit_tn.of_circuit (Generators.random_circuit ~seed:6 ~depth:4 12) in
  let _, full = Qdt.Tensornet.Circuit_tn.amplitude tn_r 37 in
  let _, sliced = Qdt.Tensornet.Circuit_tn.amplitude_sliced ~slices:4 tn_r 37 in
  Printf.printf
    "index slicing (ref [34]) on random(12): peak %d entries -> %d with 4 slices (work x%.1f)\n"
    full.Qdt.Tensornet.Network.peak_tensor_size sliced.Qdt.Tensornet.Network.peak_tensor_size
    (Float.of_int sliced.Qdt.Tensornet.Network.multiplications
    /. Float.of_int (max 1 full.Qdt.Tensornet.Network.multiplications));
  Printf.printf "\nMPS bond dimension = entanglement created by the circuit:\n";
  List.iter
    (fun (name, c) ->
      let mps = Qdt.Tensornet.Mps.run c in
      Printf.printf "  %-24s max bond = %-4d memory = %d bytes\n" name
        (Qdt.Tensornet.Mps.max_bond_dim mps)
        (Qdt.Tensornet.Mps.memory_bytes mps))
    [
      ("ghz(16)", Generators.ghz 16);
      ("w(16)", Generators.w_state 16);
      ("qft(8)", Generators.qft 8);
      ("random(10, depth 4)", Generators.random_circuit ~seed:5 ~depth:4 10);
    ];
  run_timings ~name:"e7"
    [
      bench "ghz14-tn-amplitude" (fun () ->
          ignore (Qdt.Tensornet.Circuit_tn.amplitude tn ((1 lsl n) - 1)));
      bench "ghz14-array-full-state" (fun () ->
          ignore (Qdt.Arrays.Statevector.run_unitary ghz));
      bench "ghz14-mps-amplitude" (fun () ->
          let mps = Qdt.Tensornet.Mps.run ghz in
          ignore (Qdt.Tensornet.Mps.amplitude mps ((1 lsl n) - 1)));
      bench "expectation-z-tn-w8" (fun () ->
          ignore (Qdt.Tensornet.Circuit_tn.expectation_z (Generators.w_state 8) 3));
    ]

(* ------------------------------------------------------------------ *)
(* E8: ZX rewriting: T-count optimization (Section V)                  *)
(* ------------------------------------------------------------------ *)

let e8 () =
  header "E8" "ZX-calculus: T-count reduction by graph-like simplification";
  Printf.printf "random Clifford+T (n=5, 150 gates, t-fraction 0.3):\n";
  Printf.printf "%6s | %9s | %9s | %8s\n" "seed" "T before" "T after" "spiders";
  let total_before = ref 0 and total_after = ref 0 in
  List.iter
    (fun seed ->
      let c = Generators.random_clifford_t ~seed ~gates:150 ~t_fraction:0.3 5 in
      let d = Qdt.Zx.Translate.of_circuit c in
      let before = Qdt.Zx.Simplify.t_count d in
      ignore (Qdt.Zx.Simplify.full_reduce d);
      let after = Qdt.Zx.Simplify.t_count d in
      total_before := !total_before + before;
      total_after := !total_after + after;
      Printf.printf "%6d | %9d | %9d | %8d\n" seed before after
        (List.length (Qdt.Zx.Diagram.spiders d)))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  Printf.printf "total: %d -> %d (%.1f%% reduction; ref [39] reports ~30-50%% on Clifford+T)\n"
    !total_before !total_after
    (100.0 *. Float.of_int (!total_before - !total_after)
     /. Float.max 1.0 (Float.of_int !total_before));
  let c = Generators.random_clifford_t ~seed:1 ~gates:150 ~t_fraction:0.3 5 in
  run_timings ~name:"e8"
    [
      bench "zx-translate-150-gates" (fun () ->
          ignore (Qdt.Zx.Translate.of_circuit c));
      bench "zx-full-reduce-150-gates" (fun () ->
          let d = Qdt.Zx.Translate.of_circuit c in
          ignore (Qdt.Zx.Simplify.full_reduce d));
    ]

(* ------------------------------------------------------------------ *)
(* E9: compilation / routing (introduction, refs [14]-[18])            *)
(* ------------------------------------------------------------------ *)

let e9 () =
  header "E9" "Compilation: SWAP overhead of routing onto coupling maps";
  Printf.printf "%8s | %6s | %6s | %6s | %6s\n" "circuit" "line" "ring" "grid" "full";
  List.iter
    (fun n ->
      let overhead coupling =
        (Qdt.Compile.Router.route (Generators.qft n) coupling).Qdt.Compile.Router.added_swaps
      in
      Printf.printf "%8s | %6d | %6d | %6d | %6d\n"
        (Printf.sprintf "qft(%d)" n)
        (overhead (Qdt.Compile.Coupling.line n))
        (overhead (Qdt.Compile.Coupling.ring n))
        (overhead (Qdt.Compile.Coupling.grid ~rows:2 ~cols:((n + 1) / 2)))
        (overhead (Qdt.Compile.Coupling.fully_connected n)))
    [ 4; 6; 8; 10; 12 ];
  let qft16 = Generators.qft 16 in
  Printf.printf "qft(16) on ibm-qx5 ladder: %d swaps added\n"
    (Qdt.Compile.Router.route qft16 Qdt.Compile.Coupling.ibm_qx5).Qdt.Compile.Router.added_swaps;
  run_timings ~name:"e9"
    [
      bench "route-qft10-line" (fun () ->
          ignore (Qdt.Compile.Router.route (Generators.qft 10) (Qdt.Compile.Coupling.line 10)));
      bench "route-qft16-qx5" (fun () ->
          ignore (Qdt.Compile.Router.route qft16 Qdt.Compile.Coupling.ibm_qx5));
      bench "peephole-optimize-c-cdag" (fun () ->
          let c = Generators.random_clifford ~seed:3 ~gates:100 5 in
          let cc = Circuit.append c (Circuit.adjoint c) in
          ignore (Qdt.Compile.Optimize.optimize cc));
    ]

(* ------------------------------------------------------------------ *)
(* E10: verification methods (introduction, refs [19]-[25])            *)
(* ------------------------------------------------------------------ *)

let e10 () =
  header "E10" "Verification: equivalence-checker comparison";
  let base = Generators.qft 4 in
  let routed =
    Qdt.Compile.Router.undo_final_permutation
      (Qdt.Compile.Router.route base (Qdt.Compile.Coupling.line 4))
  in
  Printf.printf "compiled QFT(4) vs original:\n";
  List.iter
    (fun checker ->
      Printf.printf "  %-16s %s\n" (Qdt.checker_name checker)
        (Qdt.Verify.Equiv.verdict_to_string (Qdt.equivalent ~checker base routed)))
    Qdt.all_checkers;
  Printf.printf "\nmutation detection over 20 seeded mutants of QFT(4):\n";
  let methods =
    [ Qdt.Check_arrays; Qdt.Check_dd; Qdt.Check_dd_alternating; Qdt.Check_zx; Qdt.Check_tn;
      Qdt.Check_simulation ]
  in
  let caught = Hashtbl.create 8 in
  let really_broken = ref 0 in
  for seed = 0 to 19 do
    let m = Qdt.Verify.Mutate.random ~seed base in
    let truth = Qdt.equivalent ~checker:Qdt.Check_arrays base m.Qdt.Verify.Mutate.circuit in
    if truth = Qdt.Verify.Equiv.Not_equivalent then begin
      incr really_broken;
      List.iter
        (fun checker ->
          let verdict = Qdt.equivalent ~checker base m.Qdt.Verify.Mutate.circuit in
          if verdict = Qdt.Verify.Equiv.Not_equivalent then
            Hashtbl.replace caught checker
              (1 + Option.value ~default:0 (Hashtbl.find_opt caught checker)))
        methods
    end
  done;
  List.iter
    (fun checker ->
      Printf.printf "  %-16s caught %d / %d\n" (Qdt.checker_name checker)
        (Option.value ~default:0 (Hashtbl.find_opt caught checker))
        !really_broken)
    methods;
  let eq_a = Generators.qft 6 in
  let eq_b =
    Qdt.Compile.Router.undo_final_permutation
      (Qdt.Compile.Router.route eq_a (Qdt.Compile.Coupling.line 6))
  in
  run_timings ~name:"e10"
    [
      bench "verify-qft6-arrays" (fun () -> ignore (Qdt.Verify.Equiv.arrays eq_a eq_b));
      bench "verify-qft6-dd" (fun () -> ignore (Qdt.Verify.Equiv.dd eq_a eq_b));
      bench "verify-qft6-dd-alternating" (fun () ->
          ignore (Qdt.Verify.Equiv.dd_alternating eq_a eq_b));
      bench "verify-qft6-tn" (fun () -> ignore (Qdt.Verify.Equiv.tn eq_a eq_b));
      bench "verify-qft6-simulation" (fun () ->
          ignore (Qdt.Verify.Equiv.simulation ~trials:4 eq_a eq_b));
      bench "verify-ghz10-dd" (fun () ->
          ignore (Qdt.Verify.Equiv.dd (Generators.ghz 10) (Generators.ghz 10)));
    ]

(* ------------------------------------------------------------------ *)
(* E8b: optimization method ablation                                   *)
(* ------------------------------------------------------------------ *)

let non_clifford_count c =
  List.fold_left
    (fun acc instr ->
      match instr with
      | Circuit.Apply { gate; _ } -> (
          match Qdt.Compile.Optimize.diag_angle gate with
          | Some theta ->
              let r = theta /. (Float.pi /. 2.0) in
              if Float.abs (r -. Float.round r) < 1e-9 then acc else acc + 1
          | None -> acc)
      | _ -> acc)
    0 (Circuit.instructions c)

let e8b () =
  header "E8b" "Ablation: peephole vs phase-polynomial vs ZX pipeline";
  Printf.printf "%6s | %16s | %16s | %16s | %16s\n" "seed" "input (g/T)" "peephole (g/T)"
    "phase-poly (g/T)" "zx (g/T)";
  List.iter
    (fun seed ->
      let c = Generators.random_clifford_t ~seed ~gates:100 ~t_fraction:0.3 5 in
      let peephole = fst (Qdt.Compile.Optimize.optimize c) in
      let pp = Qdt.Compile.Phase_poly.optimize_blocks c in
      let zx = Qdt.Zx.Extract.optimize_circuit c in
      let fmt c = Printf.sprintf "%d/%d" (Circuit.count_total c) (non_clifford_count c) in
      Printf.printf "%6d | %16s | %16s | %16s | %16s\n" seed (fmt c) (fmt peephole)
        (fmt pp) (fmt zx))
    [ 1; 2; 3; 4 ];
  let c = Generators.random_clifford_t ~seed:1 ~gates:100 ~t_fraction:0.3 5 in
  run_timings ~name:"e8b"
    [
      bench "optimize-peephole" (fun () -> ignore (Qdt.Compile.Optimize.optimize c));
      bench "optimize-phase-poly" (fun () ->
          ignore (Qdt.Compile.Phase_poly.optimize_blocks c));
      bench "optimize-zx-pipeline" (fun () -> ignore (Qdt.Zx.Extract.optimize_circuit c));
    ]

(* ------------------------------------------------------------------ *)
(* E9b: router ablation (greedy vs lookahead)                          *)
(* ------------------------------------------------------------------ *)

let e9b () =
  header "E9b" "Ablation: greedy shortest-path vs SABRE-style lookahead routing";
  Printf.printf "%22s | %8s | %10s\n" "workload/topology" "greedy" "lookahead";
  List.iter
    (fun (name, c, coupling) ->
      let greedy = (Qdt.Compile.Router.route c coupling).Qdt.Compile.Router.added_swaps in
      let look =
        (Qdt.Compile.Lookahead_router.route c coupling).Qdt.Compile.Router.added_swaps
      in
      Printf.printf "%22s | %8d | %10d\n" name greedy look)
    [
      ("qft8/line", Generators.qft 8, Qdt.Compile.Coupling.line 8);
      ("qft10/grid 2x5", Generators.qft 10, Qdt.Compile.Coupling.grid ~rows:2 ~cols:5);
      ("random8/line", Generators.random_circuit ~seed:3 ~depth:6 8, Qdt.Compile.Coupling.line 8);
      ("qv8/line", Generators.quantum_volume ~seed:2 ~depth:4 8, Qdt.Compile.Coupling.line 8);
      ("qaoa8/ring", Generators.qaoa_maxcut ~seed:5 ~layers:2 8, Qdt.Compile.Coupling.ring 8);
    ];
  let c = Generators.quantum_volume ~seed:2 ~depth:4 8 in
  run_timings ~name:"e9b"
    [
      bench "route-greedy-qv8" (fun () ->
          ignore (Qdt.Compile.Router.route c (Qdt.Compile.Coupling.line 8)));
      bench "route-lookahead-qv8" (fun () ->
          ignore (Qdt.Compile.Lookahead_router.route c (Qdt.Compile.Coupling.line 8)));
    ]

(* ------------------------------------------------------------------ *)
(* E11: stabilizer tableau scaling (Clifford circuits)                 *)
(* ------------------------------------------------------------------ *)

let e11 () =
  header "E11" "Stabilizer tableaus: Clifford circuits far beyond the array limit";
  Printf.printf "GHZ(n) final representation:\n";
  List.iter
    (fun n ->
      let t, _ = Qdt.Stabilizer.Tableau.run (Generators.ghz n) in
      Printf.printf "  n=%-4d tableau bytes=%-9d (array bytes would be %s)\n" n
        (Qdt.Stabilizer.Tableau.memory_bytes t)
        (if n <= 30 then string_of_int (16 * (1 lsl n)) else Printf.sprintf "2^%d·16" n))
    [ 10; 50; 100; 200 ];
  Printf.printf "hidden-shift(20, s=654321 mod 2^20) recovered: %b\n"
    (let n = 20 in
     let shift = 654321 land ((1 lsl n) - 1) in
     let t, _ = Qdt.Stabilizer.Tableau.run (Generators.hidden_shift ~shift n) in
     let ok = ref true in
     for q = 0 to n - 1 do
       let expect = if shift land (1 lsl q) <> 0 then -1 else 1 in
       if Qdt.Stabilizer.Tableau.expectation_z t q <> expect then ok := false
     done;
     !ok);
  run_timings ~name:"e11"
    [
      bench "ghz100-stabilizer" (fun () ->
          ignore (Qdt.Stabilizer.Tableau.run (Generators.ghz 100)));
      bench "ghz20-stabilizer" (fun () ->
          ignore (Qdt.Stabilizer.Tableau.run (Generators.ghz 20)));
      bench "ghz20-dd" (fun () -> ignore (Qdt.Dd.Sim.run_unitary (Generators.ghz 20)));
      bench "ghz20-array" (fun () ->
          ignore (Qdt.Arrays.Statevector.run_unitary (Generators.ghz 20)));
      bench "hidden-shift20-stabilizer" (fun () ->
          ignore (Qdt.Stabilizer.Tableau.run (Generators.hidden_shift ~shift:654321 20)));
    ]

(* ------------------------------------------------------------------ *)
(* E12: noise-aware simulation (trajectories vs density matrices)      *)
(* ------------------------------------------------------------------ *)

let e12 () =
  header "E12" "Noise: stochastic trajectories reproduce density-matrix results";
  let c = Generators.ghz 4 in
  Printf.printf "GHZ(4), depolarizing noise; fidelity to the ideal state:\n";
  let dd_noise =
    Qdt.Dd.Noise_sim.run ~noise:(fun () -> Qdt.Arrays.Density.phase_damping 0.1)
      (Generators.ghz 10)
  in
  Printf.printf
    "DD density matrix of GHZ(10) under phase damping: %d nodes (dense: %d entries)\n"
    (Qdt.Dd.Noise_sim.node_count dd_noise)
    (1 lsl 20);
  Printf.printf "%8s | %18s | %14s\n" "p" "trajectories(100)" "density matrix";
  List.iter
    (fun p ->
      let traj =
        Qdt.Arrays.Trajectories.average_fidelity ~seed:1
          ~noise:(Qdt.Arrays.Trajectories.depolarizing p) ~trajectories:100 c
      in
      let dm = Qdt.Arrays.Density.run ~noise:(fun () -> Qdt.Arrays.Density.depolarizing p) c in
      let exact =
        Qdt.Arrays.Density.fidelity_to_pure dm (Qdt.Arrays.Statevector.run_unitary c)
      in
      Printf.printf "%8.3f | %18.4f | %14.4f\n" p traj exact)
    [ 0.0; 0.01; 0.05; 0.1 ];
  run_timings ~name:"e12"
    [
      bench "ghz4-one-trajectory" (fun () ->
          ignore
            (Qdt.Arrays.Trajectories.run_single
               ~noise:(Qdt.Arrays.Trajectories.depolarizing 0.05) c));
      bench "ghz4-density-matrix" (fun () ->
          ignore
            (Qdt.Arrays.Density.run
               ~noise:(fun () -> Qdt.Arrays.Density.depolarizing 0.05) c));
      bench "ghz8-one-trajectory" (fun () ->
          ignore
            (Qdt.Arrays.Trajectories.run_single
               ~noise:(Qdt.Arrays.Trajectories.depolarizing 0.05) (Generators.ghz 8)));
      bench "ghz8-dd-density" (fun () ->
          ignore
            (Qdt.Dd.Noise_sim.run
               ~noise:(fun () -> Qdt.Arrays.Density.phase_damping 0.05)
               (Generators.ghz 8)));
    ]

(* ------------------------------------------------------------------ *)
(* E13: approximation in DD simulation                                 *)
(* ------------------------------------------------------------------ *)

let e13 () =
  header "E13" "Approximate DD simulation: nodes vs fidelity";
  (* A Grover state concentrates nearly all weight on the marked item; the
     residual uniform tail is exactly what approximation removes.  A
     random state has a flat spectrum and is incompressible — both rows of
     the trade-off the paper's ref [12] reports. *)
  let grover = Generators.grover ~marked:777 10 in
  Printf.printf "grover(10) final state (p(marked) ≈ 1), threshold sweep:\n";
  Printf.printf "%10s | %8s | %10s\n" "threshold" "nodes" "fidelity";
  List.iter
    (fun threshold ->
      let st = Qdt.Dd.Sim.run_unitary grover in
      let fidelity = Qdt.Dd.Approx.prune_state st ~threshold in
      Printf.printf "%10.0e | %8d | %10.6f\n" threshold (Qdt.Dd.Sim.node_count st) fidelity)
    [ 0.0; 1e-6; 1e-4; 1e-3 ];
  let random = Generators.random_circuit ~seed:4 ~depth:4 10 in
  Printf.printf "random(10) state (flat spectrum — incompressible):\n";
  List.iter
    (fun threshold ->
      let st = Qdt.Dd.Sim.run_unitary random in
      let fidelity = Qdt.Dd.Approx.prune_state st ~threshold in
      Printf.printf "%10.0e | %8d | %10.6f\n" threshold (Qdt.Dd.Sim.node_count st) fidelity)
    [ 1e-4; 1e-2 ];
  let st = Qdt.Dd.Sim.run_unitary grover in
  let mgr = Qdt.Dd.Sim.manager st in
  let root = Qdt.Dd.Sim.root st in
  run_timings ~name:"e13"
    [
      bench "prune-grover10" (fun () ->
          ignore (Qdt.Dd.Approx.prune mgr root ~threshold:1e-4));
    ]

(* ------------------------------------------------------------------ *)
(* E14: stabilizer-rank simulation of Clifford+T (ref [40])            *)
(* ------------------------------------------------------------------ *)

let e14 () =
  header "E14" "Stabilizer-rank: cost exponential in T-count, not qubit count";
  Printf.printf "single amplitude of n=8 Clifford+T circuits vs number of T gates:\n";
  Printf.printf "%4s | %10s | %12s\n" "t" "branches" "amplitude ok";
  List.iter
    (fun wanted_t ->
      (* build a Clifford circuit and sprinkle exactly wanted_t T gates *)
      let st = Random.State.make [| wanted_t |] in
      let c = ref (Generators.random_clifford ~seed:wanted_t ~gates:60 8) in
      for _ = 1 to wanted_t do
        c := Qdt.Circuit.Circuit.t (Random.State.int st 8) !c;
        let extra = Generators.random_clifford ~seed:(Random.State.int st 1000) ~gates:10 8 in
        c := Qdt.Circuit.Circuit.append !c extra
      done;
      let p = Qdt.Stabilizer.Stabilizer_rank.prepare !c in
      let amp = Qdt.Stabilizer.Stabilizer_rank.amplitude p 0 in
      let exact = Qdt.Arrays.Statevector.amplitude (Qdt.Arrays.Statevector.run_unitary !c) 0 in
      Printf.printf "%4d | %10d | %12b\n"
        (Qdt.Stabilizer.Stabilizer_rank.t_count p)
        (Qdt.Stabilizer.Stabilizer_rank.num_branches p)
        (Qdt.Linalg.Cx.approx_equal ~eps:1e-6 exact amp))
    [ 0; 2; 4; 6; 8; 10 ];
  let circuit_with_t t =
    let st = Random.State.make [| t; 99 |] in
    let c = ref (Generators.random_clifford ~seed:t ~gates:60 8) in
    for _ = 1 to t do
      c := Qdt.Circuit.Circuit.t (Random.State.int st 8) !c;
      c := Qdt.Circuit.Circuit.append !c (Generators.random_clifford ~seed:(Random.State.int st 1000) ~gates:10 8)
    done;
    !c
  in
  let p4 = Qdt.Stabilizer.Stabilizer_rank.prepare (circuit_with_t 4) in
  let p8 = Qdt.Stabilizer.Stabilizer_rank.prepare (circuit_with_t 8) in
  let c8 = circuit_with_t 8 in
  run_timings ~name:"e14"
    [
      bench "amplitude-t4" (fun () -> ignore (Qdt.Stabilizer.Stabilizer_rank.amplitude p4 0));
      bench "amplitude-t8" (fun () -> ignore (Qdt.Stabilizer.Stabilizer_rank.amplitude p8 0));
      bench "amplitude-t8-arrays" (fun () ->
          ignore (Qdt.Arrays.Statevector.amplitude (Qdt.Arrays.Statevector.run_unitary c8) 0));
      bench "ch-form-clifford-n8" (fun () ->
          ignore (Qdt.Stabilizer.Ch_form.run (Generators.random_clifford ~seed:3 ~gates:100 8)));
    ]

(* ------------------------------------------------------------------ *)
(* E15: backend portfolio — auto-dispatch choices + unified telemetry  *)
(* ------------------------------------------------------------------ *)

let e15 () =
  header "E15" "Backend portfolio: auto-dispatch choices and unified run telemetry";
  let nn_chain n =
    (* nearest-neighbour entangler ladder with non-Clifford rotations:
       bounded entanglement, the MPS sweet spot *)
    let c = ref (Circuit.empty n) in
    for q = 0 to n - 1 do
      c := Circuit.ry 0.3 q !c
    done;
    for q = 0 to n - 2 do
      c := Circuit.cx q (q + 1) !c
    done;
    !c
  in
  let workloads =
    [
      ("clifford(24)", Generators.random_clifford ~seed:1 ~gates:120 24);
      ("nn-chain(16)", nn_chain 16);
      ("clifford+t(5)", Generators.random_clifford_t ~seed:1 ~gates:100 ~t_fraction:0.3 5);
      ("qft(10)", Generators.qft 10);
      ("ghz(18)", Generators.ghz 18);
    ]
  in
  Printf.printf "auto choice per workload (operation: expectation of Z_0):\n";
  List.iter
    (fun (name, c) ->
      let (module B : Qdt.Backend.BACKEND), reason =
        Qdt.Auto.choose ~op:Qdt.Backend.Expectation_z c
      in
      Printf.printf "  %-16s -> %-18s %s\n" name B.name reason)
    workloads;
  Printf.printf "\nunified telemetry, same circuit through every capable backend:\n";
  let c = Generators.ghz 12 in
  List.iter
    (fun (module B : Qdt.Backend.BACKEND) ->
      match B.expectation_z c 0 with
      | Ok (v, stats) ->
          Printf.printf "  <Z0|ghz12> = %+.3f  %s\n" v (Qdt.Backend.stats_to_string stats)
      | Error e -> Printf.printf "  skipped: %s\n" (Qdt.Backend.error_to_string e))
    (Qdt.Registry.all ());
  let sample_via name shots =
    match Qdt.Registry.find name with
    | Some (module B : Qdt.Backend.BACKEND) -> fun c ->
        (match B.sample ~shots c with Ok _ -> () | Error _ -> ())
    | None -> fun _ -> ()
  in
  run_timings ~name:"e15"
    [
      bench "auto-sample-clifford24" (fun () ->
          sample_via "auto" 100 (Generators.random_clifford ~seed:1 ~gates:120 24));
      bench "auto-sample-qft10" (fun () -> sample_via "auto" 100 (Generators.qft 10));
      bench "dd-sample-qft10" (fun () ->
          sample_via "decision-diagrams" 100 (Generators.qft 10));
    ]

(* ------------------------------------------------------------------ *)
(* E16: DD memory management — GC keeps deep simulations bounded       *)
(* ------------------------------------------------------------------ *)

(* Run a DD simulation on an explicitly configured manager and return the
   memory-management counters.  gc_threshold = 0 disables collection, so
   the same run doubles as the unbounded baseline. *)
let e16_run ~gc_threshold c =
  let mgr = Qdt.Dd.Pkg.create ~gc_threshold () in
  let st = Qdt.Dd.Sim.make mgr (Circuit.num_qubits c) in
  let rng = Random.State.make [| 0 |] in
  let clbits = Array.make (max 1 (Circuit.num_clbits c)) 0 in
  let (), measure =
    Qdt.Backend.timed (fun () ->
        List.iter
          (fun instr -> Qdt.Dd.Sim.apply_instruction st instr ~rng ~clbits)
          (Circuit.instructions c))
  in
  let wall = measure.Qdt.Backend.wall_s in
  let stats = Qdt.Dd.Pkg.cache_stats mgr in
  let rate h l = if l = 0 then 0.0 else 100.0 *. float_of_int h /. float_of_int l in
  ( wall,
    stats,
    Qdt.Dd.Pkg.peak_unique_table_size mgr,
    Qdt.Dd.Pkg.unique_table_size mgr,
    Qdt.Dd.Pkg.cnum_live_entries mgr,
    rate stats.Qdt.Dd.Pkg.compute_hits stats.Qdt.Dd.Pkg.compute_lookups )

let e16 ~smoke () =
  header "E16" "DD memory management: mark-and-sweep GC bounds deep simulations";
  let workloads =
    if smoke then
      [
        ("clifford-t-deep", Generators.random_clifford_t ~seed:7 ~gates:400 ~t_fraction:0.2 8);
        ("qft", Generators.qft 10);
      ]
    else
      [
        (* ~100 layers of one gate per qubit *)
        ("clifford-t-deep", Generators.random_clifford_t ~seed:7 ~gates:1200 ~t_fraction:0.2 12);
        ("qft", Generators.qft 16);
      ]
  in
  let gc_threshold = if smoke then 1024 else 8192 in
  Printf.printf "gc threshold: %d unique-table entries (0 = collection off)\n\n" gc_threshold;
  Printf.printf "%18s | %6s | %9s | %10s | %8s | %9s | %9s | %7s\n" "workload" "gc"
    "wall (ms)" "peak nodes" "final" "collected" "cnum live" "cache%";
  List.iter
    (fun (name, c) ->
      let report tag threshold =
        let wall, stats, peak, final, cnum_live, cache_pct = e16_run ~gc_threshold:threshold c in
        Printf.printf "%18s | %6s | %9.2f | %10d | %8d | %9d | %9d | %6.1f%%\n" name tag
          (1000.0 *. wall) peak final stats.Qdt.Dd.Pkg.nodes_collected cnum_live cache_pct;
        let m key v = metric_int (Printf.sprintf "%s.%s.%s" name tag key) v in
        metric_float (Printf.sprintf "%s.%s.wall_ms" name tag) (1000.0 *. wall);
        m "peak_unique_table" peak;
        m "final_unique_table" final;
        m "gc_runs" stats.Qdt.Dd.Pkg.gc_runs;
        m "nodes_collected" stats.Qdt.Dd.Pkg.nodes_collected;
        m "cnums_collected" stats.Qdt.Dd.Pkg.cnums_collected;
        m "cnum_live_entries" cnum_live;
        metric_float (Printf.sprintf "%s.%s.compute_hit_pct" name tag) cache_pct;
        (wall, peak, final)
      in
      let _, peak_off, _ = report "off" 0 in
      let _, peak_on, final_on = report "on" gc_threshold in
      Printf.printf
        "  -> GC bounds the table to %.1fx the final live size (unbounded peak: %.1fx)\n"
        (float_of_int peak_on /. float_of_int (max 1 final_on))
        (float_of_int peak_off /. float_of_int (max 1 final_on)))
    workloads;
  let deep = List.assoc "clifford-t-deep" workloads in
  run_timings ~name:"e16"
    [
      bench "deep-clifford-t-gc-off" (fun () -> ignore (e16_run ~gc_threshold:0 deep));
      bench "deep-clifford-t-gc-on" (fun () -> ignore (e16_run ~gc_threshold deep));
    ]

(* ------------------------------------------------------------------ *)
(* E17: observability overhead — traced vs untraced simulation         *)
(* ------------------------------------------------------------------ *)

(* The observability contract (DESIGN.md): a disabled instrumentation site
   costs one flag check.  This experiment measures three things on a deep
   Clifford+T DD simulation:
     1. wall time with both subsystems disabled (the shipping default),
     2. wall time with metrics enabled,
     3. wall time with tracing enabled;
   and then bounds the *disabled-mode* overhead directly: the per-call
   cost of a disabled primitive (measured in a tight loop) times the
   number of instrumentation calls the run executes (counted by running
   once with metrics on).  The experiment FAILS if that bound exceeds 2%
   of the untraced runtime. *)

let e17_overhead_budget_pct = 2.0

let e17 ~smoke () =
  header "E17" "Observability overhead: traced vs untraced deep Clifford+T";
  let n = if smoke then 8 else 10 in
  let gates = if smoke then 400 else 2000 in
  let c = Generators.random_clifford_t ~seed:11 ~gates ~t_fraction:0.2 n in
  let reps = !reps_flag in
  let run_once () =
    let mgr = Qdt.Dd.Pkg.create () in
    let st = Qdt.Dd.Sim.make mgr (Circuit.num_qubits c) in
    let rng = Random.State.make [| 0 |] in
    let clbits = Array.make (max 1 (Circuit.num_clbits c)) 0 in
    List.iter
      (fun instr -> Qdt.Dd.Sim.apply_instruction st instr ~rng ~clbits)
      (Circuit.instructions c)
  in
  let time_reps () =
    (* best-of-reps damps scheduler noise for a fair ratio *)
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Qdt.Obs.Clock.now_ns () in
      run_once ();
      best := Float.min !best (float_of_int (Qdt.Obs.Clock.elapsed_ns t0))
    done;
    !best
  in
  (* Both subsystems off: the shipping default and the e17 baseline. *)
  Qdt.Obs.Metrics.set_enabled false;
  Qdt.Obs.Trace.set_enabled false;
  run_once () (* warm up *);
  let t_disabled = time_reps () in
  (* Metrics on. *)
  Qdt.Obs.Metrics.set_enabled true;
  let t_metrics = time_reps () in
  (* Count the instrumentation calls one run executes: per instruction one
     counter increment plus a begin/end span bracket, and per compute-cache
     probe a lookup increment plus (on hit) a hit increment. *)
  Qdt.Obs.Metrics.reset ();
  run_once ();
  let counted name =
    match List.assoc_opt name (Qdt.Obs.Metrics.flatten (Qdt.Obs.Metrics.snapshot ())) with
    | Some v -> int_of_float v
    | None -> 0
  in
  let instr_sites = counted "dd.gates" + counted "dd.measurements" in
  let ops_per_run =
    (3 * instr_sites) + counted "dd.cache.lookups" + counted "dd.cache.hits"
    + (4 * counted "dd.gc.runs")
  in
  Qdt.Obs.Metrics.set_enabled false;
  (* Tracing on (ring sized so nothing wraps mid-measurement). *)
  Qdt.Obs.Trace.configure ~capacity:(1 lsl 18) ();
  Qdt.Obs.Trace.set_enabled true;
  let t_traced = time_reps () in
  Qdt.Obs.Trace.set_enabled false;
  Qdt.Obs.Trace.clear ();
  (* Per-call cost of a disabled primitive, measured in a tight loop. *)
  let probe = Qdt.Obs.Metrics.counter "e17.probe" in
  let probe_iters = 5_000_000 in
  let t0 = Qdt.Obs.Clock.now_ns () in
  for _ = 1 to probe_iters do
    Qdt.Obs.Metrics.incr probe;
    Qdt.Obs.Trace.emit_begin "e17.probe"
  done;
  let per_op_ns =
    float_of_int (Qdt.Obs.Clock.elapsed_ns t0) /. float_of_int (2 * probe_iters)
  in
  (* The probe counter is measurement scaffolding, not a result — drop it
     from the registry so it never ships in BENCH_*.json obs_metrics. *)
  Qdt.Obs.Metrics.remove "e17.probe";
  let disabled_bound_pct =
    100.0 *. (float_of_int ops_per_run *. per_op_ns) /. t_disabled
  in
  let pct t = 100.0 *. ((t -. t_disabled) /. t_disabled) in
  Printf.printf "workload: random Clifford+T, n=%d, %d gates (DD backend, %d reps, best-of)\n\n"
    n gates reps;
  Printf.printf "  untraced (obs disabled)   %9.2f ms\n" (t_disabled /. 1e6);
  Printf.printf "  metrics enabled           %9.2f ms  (%+.2f%%)\n" (t_metrics /. 1e6) (pct t_metrics);
  Printf.printf "  trace enabled             %9.2f ms  (%+.2f%%)\n" (t_traced /. 1e6) (pct t_traced);
  Printf.printf "\n  instrumentation calls per run: %d (%.1f per gate)\n" ops_per_run
    (float_of_int ops_per_run /. float_of_int (max 1 instr_sites));
  Printf.printf "  disabled primitive cost: %.2f ns/call\n" per_op_ns;
  Printf.printf "  disabled-mode overhead bound: %.3f%% of untraced wall (budget: %.1f%%)\n"
    disabled_bound_pct e17_overhead_budget_pct;
  metric_float "untraced_wall_ms" (t_disabled /. 1e6);
  metric_float "metrics_wall_ms" (t_metrics /. 1e6);
  metric_float "traced_wall_ms" (t_traced /. 1e6);
  metric_float "metrics_overhead_pct" (pct t_metrics);
  metric_float "traced_overhead_pct" (pct t_traced);
  metric_int "instrumentation_calls_per_run" ops_per_run;
  metric_float "disabled_per_call_ns" per_op_ns;
  metric_float "disabled_overhead_bound_pct" disabled_bound_pct;
  metric_float "disabled_overhead_budget_pct" e17_overhead_budget_pct;
  if disabled_bound_pct > e17_overhead_budget_pct then begin
    Printf.eprintf
      "E17 FAILED: disabled-mode observability overhead bound %.3f%% exceeds the %.1f%% budget\n"
      disabled_bound_pct e17_overhead_budget_pct;
    exit 1
  end;
  Qdt.Obs.Metrics.set_enabled true;
  run_timings ~name:"e17"
    [
      bench "deep-clifford-t-untraced" (fun () ->
          Qdt.Obs.Metrics.set_enabled false;
          Qdt.Obs.Trace.set_enabled false;
          run_once ());
      bench "deep-clifford-t-metrics" (fun () ->
          Qdt.Obs.Metrics.set_enabled true;
          run_once ());
    ]

(* ------------------------------------------------------------------ *)
(* E18: unboxed numeric substrate — boxed vs flat-float kernels        *)
(* ------------------------------------------------------------------ *)

(* The tentpole claim of the unboxed substrate refactor: storing
   amplitudes as one flat interleaved float array (instead of an array of
   boxed Cx.t records) makes the statevector and MPS hot paths both
   faster and allocation-free per gate.  This experiment runs the e16/e17
   workloads plus a QFT and a nearest-neighbour MPS ansatz through the
   current engines AND through the retained boxed reference
   implementations (test/ref, linked as qdt_ref), measuring best-of-reps
   wall time and GC minor words per gate for each.  The experiment FAILS
   if the unboxed statevector is slower than the boxed one anywhere. *)

(* Nearest-neighbour layered ansatz: Ry on every qubit then CX down the
   chain, per layer — every two-qubit gate is adjacent, so the MPS engine
   never routes and the bond dimension is exercised directly. *)
let e18_mps_ansatz ~layers n =
  let c = ref (Circuit.empty n) in
  for layer = 0 to layers - 1 do
    for q = 0 to n - 1 do
      c := Circuit.ry (0.37 +. (0.11 *. float_of_int ((layer * n) + q))) q !c
    done;
    for q = 0 to n - 2 do
      c := Circuit.cx q (q + 1) !c
    done
  done;
  !c

(* Best-of-reps wall time plus minor-words-per-run for [run].  Allocation
   is measured on a dedicated run (after warmup) so bechamel-style timing
   noise cannot leak into the GC delta. *)
let e18_measure ~reps run =
  ignore (run ()) (* warm up *);
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Qdt.Obs.Clock.now_ns () in
    ignore (run ());
    best := Float.min !best (float_of_int (Qdt.Obs.Clock.elapsed_ns t0))
  done;
  let w0 = Gc.minor_words () in
  ignore (run ());
  let minor = Gc.minor_words () -. w0 in
  (!best, minor)

let e18 ~smoke () =
  header "E18" "Unboxed numeric substrate: boxed vs flat-float engines";
  let reps = !reps_flag in
  let sv_workloads =
    if smoke then
      [
        ( "clifford-t-deep",
          Generators.random_clifford_t ~seed:7 ~gates:400 ~t_fraction:0.2 8 );
        ( "clifford-t",
          Generators.random_clifford_t ~seed:11 ~gates:400 ~t_fraction:0.2 8 );
        ("qft", Generators.qft 10);
      ]
    else
      [
        (* e16's deep Clifford+T workload *)
        ( "clifford-t-deep",
          Generators.random_clifford_t ~seed:7 ~gates:1200 ~t_fraction:0.2 12 );
        (* e17's observability workload *)
        ( "clifford-t",
          Generators.random_clifford_t ~seed:11 ~gates:2000 ~t_fraction:0.2 10 );
        ("qft", Generators.qft 14);
      ]
  in
  Printf.printf "%16s | %12s | %12s | %7s | %13s | %13s | %6s\n" "workload"
    "boxed (ms)" "unboxed (ms)" "speedup" "boxed w/gate" "unbox w/gate" "alloc/";
  let min_speedup = ref infinity in
  List.iter
    (fun (name, c) ->
      let gates = float_of_int (max 1 (Circuit.count_total c)) in
      let boxed_ns, boxed_minor =
        e18_measure ~reps (fun () -> Qdt_ref.Sv_ref.run_unitary c)
      in
      let unboxed_ns, unboxed_minor =
        e18_measure ~reps (fun () -> Qdt.Arrays.Statevector.run_unitary c)
      in
      let speedup = boxed_ns /. unboxed_ns in
      let boxed_wpg = boxed_minor /. gates and unboxed_wpg = unboxed_minor /. gates in
      let alloc_reduction = boxed_wpg /. Float.max unboxed_wpg 1e-9 in
      min_speedup := Float.min !min_speedup speedup;
      Printf.printf "%16s | %12.3f | %12.3f | %6.2fx | %13.0f | %13.1f | %5.0fx\n" name
        (boxed_ns /. 1e6) (unboxed_ns /. 1e6) speedup boxed_wpg unboxed_wpg
        alloc_reduction;
      let m key v = metric_float (Printf.sprintf "sv.%s.%s" name key) v in
      m "boxed_wall_ms" (boxed_ns /. 1e6);
      m "unboxed_wall_ms" (unboxed_ns /. 1e6);
      m "speedup" speedup;
      m "boxed_minor_words_per_gate" boxed_wpg;
      m "unboxed_minor_words_per_gate" unboxed_wpg;
      m "minor_words_reduction" alloc_reduction;
      metric_int (Printf.sprintf "sv.%s.gates" name) (int_of_float gates))
    sv_workloads;
  (* MPS: same comparison through the boxed reference two-qubit/SVD path. *)
  let mps_n = if smoke then 8 else 12 in
  let mps_layers = if smoke then 3 else 6 in
  let mps_c = e18_mps_ansatz ~layers:mps_layers mps_n in
  let max_bond = 32 in
  let mps_gates = float_of_int (max 1 (Circuit.count_total mps_c)) in
  let boxed_ns, boxed_minor =
    e18_measure ~reps (fun () -> Qdt_ref.Mps_ref.run ~max_bond mps_c)
  in
  let unboxed_ns, unboxed_minor =
    e18_measure ~reps (fun () -> Qdt.Tensornet.Mps.run ~max_bond mps_c)
  in
  let speedup = boxed_ns /. unboxed_ns in
  let boxed_wpg = boxed_minor /. mps_gates and unboxed_wpg = unboxed_minor /. mps_gates in
  Printf.printf "%16s | %12.3f | %12.3f | %6.2fx | %13.0f | %13.0f | %5.1fx\n"
    (Printf.sprintf "mps-ansatz-%d" mps_n)
    (boxed_ns /. 1e6) (unboxed_ns /. 1e6) speedup boxed_wpg unboxed_wpg
    (boxed_wpg /. Float.max unboxed_wpg 1e-9);
  metric_float "mps.boxed_wall_ms" (boxed_ns /. 1e6);
  metric_float "mps.unboxed_wall_ms" (unboxed_ns /. 1e6);
  metric_float "mps.speedup" speedup;
  metric_float "mps.boxed_minor_words_per_gate" boxed_wpg;
  metric_float "mps.unboxed_minor_words_per_gate" unboxed_wpg;
  metric_int "mps.num_qubits" mps_n;
  metric_int "mps.gates" (int_of_float mps_gates);
  metric_float "min_sv_speedup" !min_speedup;
  Printf.printf "\n  minimum statevector speedup: %.2fx (guard: must be >= 1)\n"
    !min_speedup;
  if !min_speedup < 1.0 then begin
    Printf.eprintf
      "E18 FAILED: unboxed statevector is slower than the boxed baseline (%.2fx)\n"
      !min_speedup;
    exit 1
  end;
  let deep = List.assoc "clifford-t-deep" sv_workloads in
  run_timings ~name:"e18"
    [
      bench "sv-boxed" (fun () -> ignore (Qdt_ref.Sv_ref.run_unitary deep));
      bench "sv-unboxed" (fun () -> ignore (Qdt.Arrays.Statevector.run_unitary deep));
      bench "mps-boxed" (fun () -> ignore (Qdt_ref.Mps_ref.run ~max_bond mps_c));
      bench "mps-unboxed" (fun () -> ignore (Qdt.Tensornet.Mps.run ~max_bond mps_c));
    ]

(* ------------------------------------------------------------------ *)
(* E19: dynamic circuits — static sampling path vs per-shot execution  *)
(* ------------------------------------------------------------------ *)

(* The shot engine keeps two fast paths for static circuits (simulate
   once, sample the final state) and falls back to per-shot re-execution
   only when the circuit is genuinely dynamic (mid-circuit measurement
   feeding later operations, reset, or classical control).  This
   experiment measures sampling throughput (shots/sec) on both sides of
   that split: GHZ with terminal measurements exercises the static
   paths, while teleportation, repeat-until-success and a repetition-code
   cycle exercise per-shot execution on arrays, decision diagrams and
   the stabilizer tableau. *)

let e19_measure_all c =
  let n = Circuit.num_qubits c in
  let base =
    List.fold_left
      (fun acc i -> Circuit.add i acc)
      (Circuit.empty n ~clbits:n)
      (Circuit.instructions c)
  in
  let rec go q acc =
    if q >= n then acc else go (q + 1) (Circuit.measure ~qubit:q ~clbit:q acc)
  in
  go 0 base

let e19 ~smoke () =
  header "E19" "Dynamic circuits: static sampling path vs per-shot execution";
  let shots = if smoke then 200 else 2000 in
  let n = if smoke then 8 else 12 in
  let static_unitary = Generators.ghz n in
  let static_final = e19_measure_all static_unitary in
  let teleport = Generators.teleportation () in
  let rus = Generators.repeat_until_success ~rounds:3 () in
  let repetition = Generators.repetition_code ~cycles:(if smoke then 1 else 3) () in
  let sample backend c () = ignore (Qdt.sample ~backend ~seed:5 ~shots c) in
  let workloads =
    [
      ("ghz-unitary-arrays", Qdt.Arrays_backend, static_unitary);
      ("ghz-measured-arrays", Qdt.Arrays_backend, static_final);
      ("ghz-measured-dd", Qdt.Decision_diagrams, static_final);
      ("teleport-arrays", Qdt.Arrays_backend, teleport);
      ("teleport-dd", Qdt.Decision_diagrams, teleport);
      ("teleport-stabilizer", Qdt.Stabilizer_backend, teleport);
      ("rus-arrays", Qdt.Arrays_backend, rus);
      ("repetition-stabilizer", Qdt.Stabilizer_backend, repetition);
    ]
  in
  Printf.printf "%24s | %12s | %12s | %7s\n" "workload" "wall (ms)"
    "shots/sec" "dynamic";
  let throughput = ref [] in
  List.iter
    (fun (wname, backend, c) ->
      let best_ns, _minor = e18_measure ~reps:!reps_flag (sample backend c) in
      let sps = float_of_int shots /. (best_ns /. 1e9) in
      throughput := (wname, sps) :: !throughput;
      Printf.printf "%24s | %12.3f | %12.0f | %7s\n" wname (best_ns /. 1e6) sps
        (if Circuit.is_dynamic c then "yes" else "-");
      metric_float (wname ^ ".wall_ms") (best_ns /. 1e6);
      metric_float (wname ^ ".shots_per_sec") sps)
    workloads;
  (* Headline number: how much the per-shot path costs relative to the
     simulate-once-then-sample path on the same backend. *)
  (match
     ( List.assoc_opt "ghz-measured-arrays" !throughput,
       List.assoc_opt "teleport-arrays" !throughput )
   with
  | Some static_sps, Some dyn_sps when dyn_sps > 0.0 ->
      let ratio = static_sps /. dyn_sps in
      Printf.printf
        "\n  arrays static-path / per-shot-path throughput: %.1fx\n" ratio;
      metric_float "arrays.static_over_dynamic_ratio" ratio
  | _ -> ());
  metric_int "shots" shots;
  metric_int "ghz_qubits" n;
  run_timings ~name:"e19"
    [
      bench "ghz-measured-arrays" (sample Qdt.Arrays_backend static_final);
      bench "teleport-arrays" (sample Qdt.Arrays_backend teleport);
      bench "teleport-dd" (sample Qdt.Decision_diagrams teleport);
      bench "repetition-stabilizer" (sample Qdt.Stabilizer_backend repetition);
    ]

(* ------------------------------------------------------------------ *)
(* E20: multicore scaling — speedup vs. domain count                   *)
(* ------------------------------------------------------------------ *)

(* Three workload shapes across the Qdt_par substrate: a 20+-qubit
   statevector gate sweep (kernel chunking), a 1000-trajectory noise run
   (trajectory blocks), and dynamic per-shot sampling (split RNG
   streams).  Each is timed at jobs ∈ {1, 2, 4}; jobs = 1 is the serial
   reference.  The gate scales with the machine: on >= 4 cores it
   demands real speedup at 4 domains, on fewer cores (where speedup is
   physically impossible) it only guards against sub-linear collapse —
   parallel overhead must not eat more than a bounded fraction of the
   serial time.  The jobs = 2 and jobs = 4 sampled counts are asserted
   identical, pinning the split-stream determinism contract. *)

let e20_job_counts = [ 1; 2; 4 ]

let e20_measure_at jobs run =
  Qdt.Par.set_jobs jobs;
  let best_ns, _minor = e18_measure ~reps:!reps_flag run in
  best_ns

let e20 ~smoke () =
  header "E20" "Multicore scaling: domain pool speedup vs. job count";
  let cores = Domain.recommended_domain_count () in
  let sweep_n = if smoke then 16 else 20 in
  let trajectories = if smoke then 200 else 1000 in
  let shots = if smoke then 500 else 2000 in
  let sweep_c = Generators.random_circuit ~seed:9 ~depth:3 sweep_n in
  let traj_c = Generators.ghz (if smoke then 8 else 10) in
  let noise = Qdt.Arrays.Trajectories.depolarizing 0.01 in
  let teleport = Generators.teleportation () in
  let workloads =
    [
      ( "sweep",
        fun () -> ignore (Qdt.Arrays.Statevector.run_unitary sweep_c) );
      ( "trajectories",
        fun () ->
          ignore
            (Qdt.Arrays.Trajectories.average_probabilities ~seed:3 ~noise
               ~trajectories traj_c) );
      ( "dynamic-shots",
        fun () ->
          ignore (Qdt.sample ~backend:Qdt.Arrays_backend ~seed:5 ~shots teleport) );
    ]
  in
  Printf.printf "recommended domain count: %d\n" cores;
  Printf.printf "%16s | %12s | %12s | %12s | %8s | %8s\n" "workload" "jobs=1 (ms)"
    "jobs=2 (ms)" "jobs=4 (ms)" "x @2" "x @4";
  let speedups = ref [] in
  List.iter
    (fun (wname, run) ->
      let times = List.map (fun j -> (j, e20_measure_at j run)) e20_job_counts in
      let t1 = List.assoc 1 times in
      List.iter
        (fun (j, t) ->
          metric_float (Printf.sprintf "%s.jobs%d_wall_ms" wname j) (t /. 1e6);
          if j > 1 then
            metric_float (Printf.sprintf "%s.speedup%d" wname j) (t1 /. t))
        times;
      let t2 = List.assoc 2 times and t4 = List.assoc 4 times in
      speedups := (wname, t1 /. t4) :: !speedups;
      Printf.printf "%16s | %12.3f | %12.3f | %12.3f | %7.2fx | %7.2fx\n" wname
        (t1 /. 1e6) (t2 /. 1e6) (t4 /. 1e6) (t1 /. t2) (t1 /. t4))
    workloads;
  metric_int "cores" cores;
  metric_int "sweep_qubits" sweep_n;
  metric_int "trajectories" trajectories;
  metric_int "shots" shots;
  (* Determinism pin: identical dynamic counts at every parallel job
     count (the jobs >= 2 contract; jobs = 1 keeps the legacy stream). *)
  Qdt.Par.set_jobs 2;
  let counts2 = Qdt.sample ~backend:Qdt.Arrays_backend ~seed:5 ~shots teleport in
  Qdt.Par.set_jobs 4;
  let counts4 = Qdt.sample ~backend:Qdt.Arrays_backend ~seed:5 ~shots teleport in
  if counts2 <> counts4 then begin
    Printf.eprintf "E20 FAILED: dynamic counts differ between jobs=2 and jobs=4\n";
    exit 1
  end;
  Printf.printf "\n  jobs=2 and jobs=4 dynamic counts: identical (determinism pin)\n";
  (* Scaling gate. *)
  let demand wname floor =
    let s = List.assoc wname !speedups in
    if s < floor then begin
      Printf.eprintf "E20 FAILED: %s speedup at 4 domains is %.2fx (floor %.2fx)\n"
        wname s floor;
      exit 1
    end
  in
  if cores >= 4 then begin
    let sweep_floor = if smoke then 1.2 else 2.0 in
    let traj_floor = if smoke then 1.2 else 3.0 in
    Printf.printf "  gate (%d cores): sweep >= %.1fx, trajectories >= %.1fx at 4 domains\n"
      cores sweep_floor traj_floor;
    demand "sweep" sweep_floor;
    demand "trajectories" traj_floor
  end
  else begin
    (* Too few cores for speedup; guard that the pool does not collapse
       (oversubscribed domains must stay within 4x of serial). *)
    Printf.printf
      "  gate (%d cores): no speedup possible — collapse guard only (>= 0.25x)\n"
      cores;
    List.iter (fun (wname, _) -> demand wname 0.25) !speedups
  end;
  (* Baseline-gated timings: serial and 2-domain flavours of each shape.
     set_jobs inside the thunk so harness batching cannot leak a stale
     job count into the measurement. *)
  let at j run () = Qdt.Par.set_jobs j; run () in
  let sweep_run = List.assoc "sweep" workloads in
  let traj_run = List.assoc "trajectories" workloads in
  let shots_run = List.assoc "dynamic-shots" workloads in
  run_timings ~name:"e20"
    [
      bench "sweep-jobs1" (at 1 sweep_run);
      bench "sweep-jobs2" (at 2 sweep_run);
      bench "trajectories-jobs2" (at 2 traj_run);
      bench "dynamic-shots-jobs2" (at 2 shots_run);
    ];
  (* Leave the process the way the other experiments expect it. *)
  Qdt.Par.set_jobs 1;
  Qdt.Par.shutdown ()

(* ------------------------------------------------------------------ *)
(* E21: run-report + labeled-metrics overhead on the e17 workload      *)
(* ------------------------------------------------------------------ *)

(* ISSUE 8's service-telemetry layer adds two new classes of
   instrumentation to the e17 deep Clifford+T workload: labeled metric
   series (Atomic cells behind encoded registry keys) and resource
   watermarks (CAS-max cells).  This experiment re-applies the e17
   methodology to them:
     1. the *disabled* per-call cost of the new primitives, times the
        instrumentation calls one run executes, must stay within e17's
        2% budget — labels and watermarks ride the same one-load gate;
     2. a full Report bracket (start / run / finish) must cost at most
        5% of the plain wall time — the price of `--report` on every
        simulation a service runs. *)

let e21_report_budget_pct = 5.0

let e21 ~smoke () =
  header "E21" "Run reports: labeled-metrics + watermark + report-bracket overhead";
  let n = if smoke then 8 else 10 in
  let gates = if smoke then 400 else 2000 in
  let c = Generators.random_clifford_t ~seed:11 ~gates ~t_fraction:0.2 n in
  let reps = !reps_flag in
  let run_once () =
    let mgr = Qdt.Dd.Pkg.create () in
    let st = Qdt.Dd.Sim.make mgr (Circuit.num_qubits c) in
    let rng = Random.State.make [| 0 |] in
    let clbits = Array.make (max 1 (Circuit.num_clbits c)) 0 in
    List.iter
      (fun instr -> Qdt.Dd.Sim.apply_instruction st instr ~rng ~clbits)
      (Circuit.instructions c)
  in
  let time_reps body =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Qdt.Obs.Clock.now_ns () in
      body ();
      best := Float.min !best (float_of_int (Qdt.Obs.Clock.elapsed_ns t0))
    done;
    !best
  in
  (* Everything off: the shipping default. *)
  Qdt.Obs.Metrics.set_enabled false;
  Qdt.Obs.Trace.set_enabled false;
  Qdt.Obs.Watermark.set_enabled false;
  run_once () (* warm up *);
  let t_plain = time_reps run_once in
  (* Labeled metrics + watermarks live. *)
  Qdt.Obs.Metrics.set_enabled true;
  Qdt.Obs.Watermark.set_enabled true;
  let t_instr = time_reps run_once in
  (* Count the watermark observations one run executes (labeled counters
     in this workload fire per backend entry, not per gate — the per-gate
     counters are the e17-audited plain ones). *)
  Qdt.Obs.Metrics.reset ();
  run_once ();
  let counted name =
    match
      List.assoc_opt name (Qdt.Obs.Metrics.flatten (Qdt.Obs.Metrics.snapshot ()))
    with
    | Some v -> int_of_float v
    | None -> 0
  in
  (* One watermark observe per DD garbage collection, plus one for the
     backend adapter's per-run peak observation (counted even though this
     harness drives Sim directly — the bound stays conservative). *)
  let new_ops_per_run = counted "dd.gc.runs" + 1 in
  Qdt.Obs.Metrics.set_enabled false;
  Qdt.Obs.Watermark.set_enabled false;
  (* Full report bracket around every run. *)
  let t_reported =
    time_reps (fun () ->
        let rep = Qdt.Obs.Report.start () in
        run_once ();
        ignore (Qdt.Obs.Report.finish rep))
  in
  (* The bracket's own cost, isolated: start/finish around an empty body,
     against the registry the counting run populated.  Like e17's
     disabled-mode bound, this analytic form (bracket cost / wall) is
     immune to the run-to-run noise that swamps a direct wall comparison
     on a workload this size. *)
  let bracket_iters = 200 in
  let bracket_ns =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Qdt.Obs.Clock.now_ns () in
      for _ = 1 to bracket_iters do
        let rep = Qdt.Obs.Report.start () in
        ignore (Qdt.Obs.Report.finish rep)
      done;
      best :=
        Float.min !best
          (float_of_int (Qdt.Obs.Clock.elapsed_ns t0) /. float_of_int bracket_iters)
    done;
    !best
  in
  let report_overhead_pct = 100.0 *. bracket_ns /. t_plain in
  (* Disabled per-call cost of the new primitives: a labeled counter
     increment plus a watermark observation, flags off. *)
  let probe_c = Qdt.Obs.Metrics.counter_with ~labels:[ ("probe", "e21") ] "e21.probe" in
  let probe_w = Qdt.Obs.Watermark.watermark "e21.probe" in
  let probe_iters = 5_000_000 in
  let t0 = Qdt.Obs.Clock.now_ns () in
  for i = 1 to probe_iters do
    Qdt.Obs.Metrics.incr probe_c;
    Qdt.Obs.Watermark.observe_int probe_w i
  done;
  let per_op_ns =
    float_of_int (Qdt.Obs.Clock.elapsed_ns t0) /. float_of_int (2 * probe_iters)
  in
  Qdt.Obs.Metrics.remove "e21.probe{probe=\"e21\"}";
  let disabled_bound_pct =
    100.0 *. (float_of_int new_ops_per_run *. per_op_ns) /. t_plain
  in
  let pct t = 100.0 *. ((t -. t_plain) /. t_plain) in
  Printf.printf
    "workload: random Clifford+T, n=%d, %d gates (DD backend, %d reps, best-of)\n\n"
    n gates reps;
  Printf.printf "  plain (obs disabled)      %9.2f ms\n" (t_plain /. 1e6);
  Printf.printf "  labels + watermarks       %9.2f ms  (%+.2f%%)\n" (t_instr /. 1e6)
    (pct t_instr);
  Printf.printf "  full report bracket       %9.2f ms  (%+.2f%%)\n" (t_reported /. 1e6)
    (pct t_reported);
  Printf.printf "\n  new instrumentation calls per run: %d\n" new_ops_per_run;
  Printf.printf "  disabled labeled+watermark cost: %.2f ns/call\n" per_op_ns;
  Printf.printf "  disabled-mode overhead bound: %.4f%% of plain wall (budget: %.1f%%)\n"
    disabled_bound_pct e17_overhead_budget_pct;
  Printf.printf "  report bracket cost: %.1f us -> %.4f%% of plain wall (budget: %.1f%%)\n"
    (bracket_ns /. 1e3) report_overhead_pct e21_report_budget_pct;
  metric_float "plain_wall_ms" (t_plain /. 1e6);
  metric_float "instrumented_wall_ms" (t_instr /. 1e6);
  metric_float "reported_wall_ms" (t_reported /. 1e6);
  metric_float "instrumented_overhead_pct" (pct t_instr);
  metric_float "reported_wall_delta_pct" (pct t_reported);
  metric_float "report_bracket_us" (bracket_ns /. 1e3);
  metric_float "report_overhead_pct" report_overhead_pct;
  metric_int "new_instrumentation_calls_per_run" new_ops_per_run;
  metric_float "disabled_per_call_ns" per_op_ns;
  metric_float "disabled_overhead_bound_pct" disabled_bound_pct;
  metric_float "report_overhead_budget_pct" e21_report_budget_pct;
  if disabled_bound_pct > e17_overhead_budget_pct then begin
    Printf.eprintf
      "E21 FAILED: disabled-mode labeled/watermark overhead bound %.4f%% exceeds the %.1f%% budget\n"
      disabled_bound_pct e17_overhead_budget_pct;
    exit 1
  end;
  if report_overhead_pct > e21_report_budget_pct then begin
    Printf.eprintf
      "E21 FAILED: report-bracket overhead %.4f%% of wall exceeds the %.1f%% budget\n"
      report_overhead_pct e21_report_budget_pct;
    exit 1
  end;
  Qdt.Obs.Metrics.set_enabled true;
  run_timings ~name:"e21"
    [
      bench "deep-clifford-t-plain" (fun () ->
          Qdt.Obs.Metrics.set_enabled false;
          Qdt.Obs.Watermark.set_enabled false;
          run_once ());
      bench "deep-clifford-t-instrumented" (fun () ->
          Qdt.Obs.Metrics.set_enabled true;
          Qdt.Obs.Watermark.set_enabled true;
          run_once ());
      bench "deep-clifford-t-reported" (fun () ->
          let rep = Qdt.Obs.Report.start () in
          run_once ();
          ignore (Qdt.Obs.Report.finish rep));
    ]

(* ------------------------------------------------------------------ *)
(* E22: sessions — warm vs cold DD engines on repeated jobs            *)
(* ------------------------------------------------------------------ *)

(* The session refactor's headline number: a session-held DD package
   keeps its unique table, complex-number table and compute caches
   across jobs, so a repeated Clifford+T workload re-runs against warm
   caches instead of rebuilding them per request (the amortizable
   structures of DAC'22 §III / arXiv:2108.07027).  Cold = a fresh
   engine per job (exactly what every one-shot BACKEND call does);
   warm = one engine for the whole batch.  The gate fails if warm is
   not faster than cold. *)

let e22 ~smoke () =
  header "E22" "Sessions: warm vs cold DD engines on repeated Clifford+T jobs";
  (* Sized so the batch's unique table stays under the GC threshold: a
     collection clears the compute caches wholesale, which is exactly the
     state a warm session exists to preserve.  (E16 covers the bounded-
     memory regime where GC fires.) *)
  let n = if smoke then 6 else 7 in
  let gates = if smoke then 120 else 180 in
  let jobs = if smoke then 6 else 10 in
  let reps = !reps_flag in
  let c = Generators.random_clifford_t ~seed:13 ~gates ~t_fraction:0.25 n in
  let (module S : Qdt.Backend.SESSION) =
    match Qdt.Registry.find_session "decision-diagrams" with
    | Some m -> m
    | None -> failwith "decision-diagrams session engine not registered"
  in
  (* Amplitude jobs: full DD evolution per job, O(n) payload read — the
     timing is cache behavior, not payload densification. *)
  let job = Qdt.Job.Amplitude 0 in
  let submit_ok s =
    match S.submit s c job with
    | Ok (_, stats) -> stats
    | Error e -> failwith (Qdt.Backend.error_to_string e)
  in
  let run_cold () =
    for _ = 1 to jobs do
      let s = S.create () in
      ignore (submit_ok s);
      S.close s
    done
  in
  let run_warm () =
    let s = S.create () in
    for _ = 1 to jobs do
      ignore (submit_ok s)
    done;
    S.close s
  in
  let time_reps body =
    body () (* warm up *);
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Qdt.Obs.Clock.now_ns () in
      body ();
      best := Float.min !best (float_of_int (Qdt.Obs.Clock.elapsed_ns t0))
    done;
    !best
  in
  let t_cold = time_reps run_cold in
  let t_warm = time_reps run_warm in
  (* Where the speedup comes from: per-job cache-counter deltas across
     one warm batch. *)
  let s = S.create () in
  let first = submit_ok s in
  let last = ref first in
  for _ = 2 to jobs do
    last := submit_ok s
  done;
  S.close s;
  let dd_of st =
    match st.Qdt.Backend.dd with Some d -> d | None -> failwith "dd stats missing"
  in
  let d1 = dd_of first and dn = dd_of !last in
  let speedup = t_cold /. t_warm in
  Printf.printf
    "workload: random Clifford+T, n=%d, %d gates, %d identical jobs per batch (%d reps, best-of)\n\n"
    n gates jobs reps;
  Printf.printf "  cold sessions (fresh engine per job)  %9.2f ms\n" (t_cold /. 1e6);
  Printf.printf "  warm session  (one engine, %2d jobs)   %9.2f ms\n" jobs (t_warm /. 1e6);
  Printf.printf "  speedup: %.2fx\n\n" speedup;
  Printf.printf "  job 1  compute-hit %5.1f%%  unique-hit %5.1f%%  gc-runs %d\n"
    (100.0 *. d1.Qdt.Backend.compute_hit_rate)
    (100.0 *. d1.Qdt.Backend.unique_hit_rate)
    d1.Qdt.Backend.gc_runs;
  Printf.printf "  job %-2d compute-hit %5.1f%%  unique-hit %5.1f%%  gc-runs %d\n" jobs
    (100.0 *. dn.Qdt.Backend.compute_hit_rate)
    (100.0 *. dn.Qdt.Backend.unique_hit_rate)
    dn.Qdt.Backend.gc_runs;
  metric_int "qubits" n;
  metric_int "gates" gates;
  metric_int "jobs_per_batch" jobs;
  metric_float "cold_batch_ms" (t_cold /. 1e6);
  metric_float "warm_batch_ms" (t_warm /. 1e6);
  metric_float "warm_speedup" speedup;
  metric_float "job1_compute_hit_rate" d1.Qdt.Backend.compute_hit_rate;
  metric_float "jobN_compute_hit_rate" dn.Qdt.Backend.compute_hit_rate;
  metric_float "job1_unique_hit_rate" d1.Qdt.Backend.unique_hit_rate;
  metric_float "jobN_unique_hit_rate" dn.Qdt.Backend.unique_hit_rate;
  metric_int "job1_gc_runs" d1.Qdt.Backend.gc_runs;
  metric_int "jobN_gc_runs" dn.Qdt.Backend.gc_runs;
  if t_warm >= t_cold then begin
    Printf.eprintf
      "E22 FAILED: warm session batch (%.2f ms) is not faster than cold (%.2f ms)\n"
      (t_warm /. 1e6) (t_cold /. 1e6);
    exit 1
  end;
  let warm_s = S.create () in
  ignore (submit_ok warm_s) (* prime the engine for the warm timing *);
  run_timings ~name:"e22"
    [
      bench "cold-session-job" (fun () ->
          let s = S.create () in
          let st = submit_ok s in
          S.close s;
          st);
      bench "warm-session-job" (fun () -> submit_ok warm_s);
    ];
  S.close warm_s

(* ------------------------------------------------------------------ *)
(* E23: serve — HTTP/JSONL job throughput, tail latency, warm sessions *)
(* ------------------------------------------------------------------ *)

(* The serving layer's headline numbers: jobs/sec and p50/p99 latency
   through the full HTTP path (socket → queue → worker domain → session
   engine → response), measured with the in-tree load generator against
   an in-process server on an ephemeral port.  The gate reruns e22's
   warm-vs-cold comparison END TO END: the same Clifford+T workload
   driven over HTTP with per-client warm sessions must strictly beat
   the sessionless path, where every request pays engine create/close —
   if serving overhead ever swallows the session win, this fails. *)

let e23 ~smoke () =
  header "E23" "Serve: HTTP job throughput, tail latency, and warm sessions";
  let clients = if smoke then 4 else 6 in
  let jobs_per_client = if smoke then 10 else 40 in
  let reps = !reps_flag in
  let n = if smoke then 6 else 7 in
  let gates = if smoke then 120 else 180 in
  let qasm =
    Qdt.Circuit.Qasm.to_string
      (Generators.random_clifford_t ~seed:13 ~gates ~t_fraction:0.25 n)
  in
  let t =
    Qdt_serve.Server.start
      {
        Qdt_serve.Server.default_config with
        port = 0;
        workers = 2;
        queue_depth = 256;
        access_log = None;
      }
  in
  Fun.protect ~finally:(fun () -> Qdt_serve.Server.stop t) @@ fun () ->
  let port = Qdt_serve.Server.port t in
  let load ?(mix = [ `Sample; `Expectation; `Amplitude ]) ~use_sessions () =
    Qdt_serve.Loadgen.run ~port ~use_sessions ~mix ~qasm ~clients
      ~jobs_per_client ()
  in
  (* Throughput and tails: mixed job kinds on warm per-client sessions. *)
  let s = load ~use_sessions:true () in
  print_endline ("  " ^ Qdt_serve.Loadgen.pp_summary s);
  if s.Qdt_serve.Loadgen.failed > 0 then begin
    Printf.eprintf "E23 FAILED: %d jobs failed under load\n"
      s.Qdt_serve.Loadgen.failed;
    exit 1
  end;
  (* Warm vs cold over HTTP, best-of like every other gate here.  One
     job kind so the batches are identical apart from session reuse. *)
  let best_wall ~use_sessions =
    let best = ref infinity in
    for _ = 1 to reps do
      let r = load ~mix:[ `Amplitude ] ~use_sessions () in
      if r.Qdt_serve.Loadgen.failed > 0 then begin
        Printf.eprintf "E23 FAILED: jobs failed during warm/cold timing\n";
        exit 1
      end;
      best := Float.min !best r.Qdt_serve.Loadgen.wall_s
    done;
    !best
  in
  ignore (best_wall ~use_sessions:true) (* warm up server + sessions *);
  let t_cold = best_wall ~use_sessions:false in
  let t_warm = best_wall ~use_sessions:true in
  let speedup = t_cold /. t_warm in
  Printf.printf
    "\nworkload: random Clifford+T, n=%d, %d gates; %d clients x %d jobs (%d reps, best-of)\n\n"
    n gates clients jobs_per_client reps;
  Printf.printf "  cold (no session: engine per request)  %9.2f ms\n" (t_cold *. 1e3);
  Printf.printf "  warm (per-client session reuse)        %9.2f ms\n" (t_warm *. 1e3);
  Printf.printf "  speedup: %.2fx\n" speedup;
  metric_int "qubits" n;
  metric_int "gates" gates;
  metric_int "clients" clients;
  metric_int "jobs_per_client" jobs_per_client;
  metric_float "jobs_per_s" s.Qdt_serve.Loadgen.jobs_per_s;
  metric_int "p50_ns" s.Qdt_serve.Loadgen.p50_ns;
  metric_int "p99_ns" s.Qdt_serve.Loadgen.p99_ns;
  metric_int "max_ns" s.Qdt_serve.Loadgen.max_ns;
  metric_int "retried_429" s.Qdt_serve.Loadgen.retried_429;
  metric_float "cold_batch_ms" (t_cold *. 1e3);
  metric_float "warm_batch_ms" (t_warm *. 1e3);
  metric_float "warm_speedup" speedup;
  if t_warm >= t_cold then begin
    Printf.eprintf
      "E23 FAILED: warm-session serving (%.2f ms) is not faster than cold (%.2f ms)\n"
      (t_warm *. 1e3) (t_cold *. 1e3);
    exit 1
  end;
  (* Per-request latency through the whole stack, for the baseline gate:
     one HTTP round trip per thunk, warm session vs sessionless. *)
  let c = Qdt_serve.Client.connect ~host:"127.0.0.1" ~port in
  Fun.protect ~finally:(fun () -> Qdt_serve.Client.close c) @@ fun () ->
  let body ~session =
    Printf.sprintf "{\"qasm\": %s, \"backend\": \"decision-diagrams\"%s, \"job\": {\"kind\": \"amplitude\", \"index\": 0}}"
      (Qdt.Obs.Json.string qasm)
      (match session with
      | Some s -> Printf.sprintf ", \"session\": \"%s\"" s
      | None -> "")
  in
  let post body =
    match Qdt_serve.Client.post c ~path:"/v1/jobs" ~body with
    | Ok (200, _) -> ()
    | Ok (status, resp) ->
        failwith (Printf.sprintf "e23: HTTP %d: %s" status resp)
    | Error e -> failwith ("e23: connection error: " ^ e)
  in
  let warm_body = body ~session:(Some "bench") and cold_body = body ~session:None in
  post warm_body (* prime the warm session *);
  run_timings ~name:"e23"
    [
      bench "http-job-cold" (fun () -> post cold_body);
      bench "http-job-warm" (fun () -> post warm_body);
    ]

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments : (string * (smoke:bool -> unit)) list =
  [
    ("e1", fun ~smoke:_ -> e1 ());
    ("e2", fun ~smoke:_ -> e2 ());
    ("e3", fun ~smoke:_ -> e3 ());
    ("e4", fun ~smoke:_ -> e4 ());
    ("e5", fun ~smoke:_ -> e5 ());
    ("e6", fun ~smoke:_ -> e6 ());
    ("e7", fun ~smoke:_ -> e7 ());
    ("e8", fun ~smoke:_ -> e8 ());
    ("e8b", fun ~smoke:_ -> e8b ());
    ("e9", fun ~smoke:_ -> e9 ());
    ("e9b", fun ~smoke:_ -> e9b ());
    ("e10", fun ~smoke:_ -> e10 ());
    ("e11", fun ~smoke:_ -> e11 ());
    ("e12", fun ~smoke:_ -> e12 ());
    ("e13", fun ~smoke:_ -> e13 ());
    ("e14", fun ~smoke:_ -> e14 ());
    ("e15", fun ~smoke:_ -> e15 ());
    ("e16", fun ~smoke -> e16 ~smoke ());
    ("e17", fun ~smoke -> e17 ~smoke ());
    ("e18", fun ~smoke -> e18 ~smoke ());
    ("e19", fun ~smoke -> e19 ~smoke ());
    ("e20", fun ~smoke -> e20 ~smoke ());
    ("e21", fun ~smoke -> e21 ~smoke ());
    ("e22", fun ~smoke -> e22 ~smoke ());
    ("e23", fun ~smoke -> e23 ~smoke ());
  ]

(* ------------------------------------------------------------------ *)
(* Baseline gate                                                       *)
(* ------------------------------------------------------------------ *)

let baseline_dir = "bench" ^ Filename.dir_sep ^ "baselines"
let baseline_path id = Filename.concat baseline_dir (id ^ ".json")

let current_baseline ~experiment ~smoke =
  {
    Baseline.experiment;
    smoke;
    timings =
      List.rev_map
        (fun (label, s) -> { Baseline.label; timing = s })
        !json_timings;
  }

(* Returns [Some reason] when the experiment regressed (or cannot be
   gated when it should be), [None] when it passes. *)
let compare_against_baseline ~experiment ~smoke =
  let path = baseline_path experiment in
  match Baseline.read ~path with
  | Error msg ->
      Printf.printf "\n[%s] no usable baseline: %s\n" experiment msg;
      Printf.printf "  run with --update-baselines to record one\n";
      Some "missing baseline"
  | Ok base ->
      if base.Baseline.smoke <> smoke then begin
        Printf.printf
          "\n[%s] baseline is a %s run but this is a %s run — comparison skipped\n"
          experiment
          (if base.Baseline.smoke then "smoke" else "full")
          (if smoke then "smoke" else "full");
        None
      end
      else begin
        let cmp =
          Baseline.compare ~baseline:base
            ~current:(current_baseline ~experiment ~smoke)
            ()
        in
        Printf.printf
          "\n[%s] vs %s (gate: best rep > max(median × %.2g, median + %g·MAD)):\n"
          experiment path Baseline.default_min_ratio Baseline.default_mad_k;
        print_string (Baseline.render cmp);
        if cmp.Baseline.any_regressed then Some "timing regression" else None
      end

let update_baseline ~experiment ~smoke =
  if not (Sys.file_exists baseline_dir) then Sys.mkdir baseline_dir 0o755;
  let path = baseline_path experiment in
  Baseline.write ~path (current_baseline ~experiment ~smoke);
  Printf.printf "wrote baseline %s\n" path

let usage () =
  Printf.eprintf
    "usage: bench [EXPERIMENT...] [--smoke] [--reps N] [--jobs N] [--compare] [--update-baselines]\n\
     known experiments: %s\n"
    (String.concat " " (List.map fst experiments))

let () =
  let smoke = ref false in
  let compare_ = ref false in
  let update = ref false in
  let reps = ref None in
  let selected = ref [] in
  let argc = Array.length Sys.argv in
  let i = ref 1 in
  while !i < argc do
    (match Sys.argv.(!i) with
    | "--smoke" -> smoke := true
    | "--compare" -> compare_ := true
    | "--update-baselines" -> update := true
    | "--reps" ->
        incr i;
        (match if !i < argc then int_of_string_opt Sys.argv.(!i) else None with
        | Some n when n >= 1 -> reps := Some n
        | _ ->
            Printf.eprintf "--reps needs an integer argument >= 1\n";
            exit 2)
    | "--jobs" ->
        incr i;
        (match if !i < argc then int_of_string_opt Sys.argv.(!i) else None with
        | Some n when n >= 1 -> Qdt.Par.set_jobs n
        | _ ->
            Printf.eprintf "--jobs needs an integer argument >= 1\n";
            exit 2)
    | name when List.mem_assoc name experiments -> selected := name :: !selected
    | name ->
        Printf.eprintf "unknown argument %S\n" name;
        usage ();
        exit 2);
    incr i
  done;
  reps_flag := (match !reps with Some n -> n | None -> if !smoke then 3 else 5);
  let to_run =
    if !selected = [] then experiments
    else List.filter (fun (name, _) -> List.mem name !selected) experiments
  in
  print_endline "QDT benchmark harness — experiments E1..E23 (see DESIGN.md / EXPERIMENTS.md)";
  Printf.printf "timing: %d reps per measurement (median ± MAD)\n" !reps_flag;
  let failures = ref [] in
  List.iter
    (fun (name, fn) ->
      json_timings := [];
      json_metrics := [];
      (* Per-experiment Qdt_obs accounting: the registry totals are
         embedded into BENCH_<id>.json by [write_json].  (E17/E21 toggle
         the flags themselves to measure the disabled path.)  Each
         experiment runs inside a Report bracket so its BENCH JSON carries
         the same run-report artifact `qdt simulate --report` emits. *)
      Qdt.Obs.Metrics.set_enabled true;
      Qdt.Obs.Metrics.reset ();
      let rep = Qdt.Obs.Report.start () in
      fn ~smoke:!smoke;
      write_json ~experiment:name ~smoke:!smoke
        ~report:(Qdt.Obs.Report.finish rep);
      if !update then update_baseline ~experiment:name ~smoke:!smoke
      else if !compare_ then
        match compare_against_baseline ~experiment:name ~smoke:!smoke with
        | Some reason -> failures := (name, reason) :: !failures
        | None -> ())
    to_run;
  print_endline "\nAll experiments complete.";
  match List.rev !failures with
  | [] -> ()
  | failures ->
      List.iter
        (fun (name, reason) ->
          Printf.eprintf "PERF GATE FAILED: %s (%s)\n" name reason)
        failures;
      exit 1
