(* qdt — command-line front end: show / simulate / compile / verify / gen /
   export subcommands over OpenQASM files. *)

open Cmdliner
module Circuit = Qdt_circuit.Circuit
module Generators = Qdt_circuit.Generators
module Qasm = Qdt_circuit.Qasm
module Draw = Qdt_circuit.Draw

let read_circuit path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  Qasm.of_string src

let load path =
  match read_circuit path with
  | c -> Ok c
  | exception Qasm.Parse_error msg -> Error (`Msg (Printf.sprintf "%s: %s" path msg))
  | exception Sys_error msg -> Error (`Msg msg)

let circuit_arg =
  let parse path = load path in
  let print ppf _ = Format.fprintf ppf "<circuit>" in
  Arg.conv (parse, print)

let file_pos ~doc n = Arg.(required & pos n (some circuit_arg) None & info [] ~docv:"FILE" ~doc)

let bitstring n k =
  String.init n (fun i -> if k land (1 lsl (n - 1 - i)) <> 0 then '1' else '0')

(* ------------------------------------------------------------------ *)
(* Observability flags (shared by simulate / compile / verify)         *)
(* ------------------------------------------------------------------ *)

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Record nested spans of the run and write them to FILE \
               (Chrome trace-event JSON by default — load it in Perfetto \
               or chrome://tracing).")

let trace_format_arg =
  Arg.(value & opt (enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ]) `Chrome
       & info [ "trace-format" ] ~docv:"FORMAT"
           ~doc:"Trace output format: chrome (one JSON document) or jsonl \
                 (one event per line).")

let metrics_arg =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Enable the metrics registry (counters, gauges, histograms) \
               and print every instrument after the run.")

let jobs_arg =
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Domains for parallel kernels, shot loops and trajectory \
               runs (default: $(b,QDT_JOBS), else the machine's \
               recommended domain count). $(b,--jobs 1) disables parallel \
               execution and is bit-identical to a serial build.")

let apply_jobs = function
  | None -> ()
  | Some j ->
      if j < 1 then begin
        prerr_endline "--jobs must be >= 1";
        exit 1
      end;
      Qdt.Par.set_jobs j

let profile_arg =
  Arg.(value & opt ~vopt:(Some "profile.folded") (some string) None
       & info [ "profile" ] ~docv:"FILE"
           ~doc:"Profile the run: aggregate the span trace into a hotspot \
                 table (printed after the run) and write folded stacks to \
                 FILE (default profile.folded) for flamegraph.pl or \
                 speedscope.")

let top_arg =
  Arg.(value & opt int 10 & info [ "top" ]
         ~doc:"Number of rows in the profile hotspot table.")

let report_arg =
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE"
         ~doc:"Bracket the run in a report (metrics diff, resource \
               watermarks, circuit features, chosen backend, hotspots) \
               and write the JSON artifact to FILE.  Render it with \
               $(b,qdt report FILE).")

let dump_on_error_arg =
  Arg.(value & flag & info [ "dump-on-error" ]
         ~doc:"On any exception or backend decline, write a crash report \
               (report-so-far, error, trace tail) to the $(b,--report) \
               path, or qdt-crash-report.json when none was given.")

let warn_dropped what =
  let dropped = Qdt.Obs.Trace.dropped_events () in
  if dropped > 0 then
    Printf.eprintf
      "%s: ring full, %d oldest events dropped — enlarge the ring or shrink the run\n%!"
      what dropped

let print_profile ~top ~folded_path =
  let p = Qdt.Obs.Profile.of_events (Qdt.Obs.Trace.events ()) in
  warn_dropped "profile";
  print_string (Qdt.Obs.Profile.render ~top p);
  let oc = open_out folded_path in
  output_string oc (Qdt.Obs.Profile.folded_stacks p);
  close_out oc;
  Printf.printf "folded stacks: wrote %s (%d stacks)\n" folded_path
    (List.length (Qdt.Obs.Profile.folded p))

(* [with_obs] enables the requested subsystems, runs [f], then exports the
   trace, prints the profile, and prints the metrics.  Early [exit]s
   inside [f] skip the export on purpose: a partial trace of a failed run
   would be misleading. *)
let with_obs ?(profile = None) ?(top = 10) ~trace ~trace_format ~metrics f =
  if metrics then Qdt.Obs.Metrics.set_enabled true;
  if trace <> None || profile <> None then Qdt.Obs.Trace.set_enabled true;
  let result = f () in
  (match trace with
  | None -> ()
  | Some path ->
      (match trace_format with
      | `Chrome -> Qdt.Obs.Trace.export_chrome path
      | `Jsonl -> Qdt.Obs.Trace.export_jsonl path);
      let n = List.length (Qdt.Obs.Trace.events ()) in
      warn_dropped "trace";
      Printf.printf "trace: wrote %d events to %s\n" n path);
  (match profile with
  | None -> ()
  | Some folded_path -> print_profile ~top ~folded_path);
  if metrics then begin
    print_string "metrics:\n";
    print_string (Qdt.Obs.Metrics.render (Qdt.Obs.Metrics.snapshot ()))
  end;
  result

(* ------------------------------------------------------------------ *)
(* show                                                                *)
(* ------------------------------------------------------------------ *)

let show_cmd =
  let run c =
    print_string (Draw.render c);
    Printf.printf "\nqubits: %d  instructions: %d  depth: %d  t-count: %d\n"
      (Circuit.num_qubits c) (Circuit.count_total c) (Circuit.depth c) (Circuit.t_count c);
    List.iter (fun (name, k) -> Printf.printf "  %-8s %d\n" name k) (Circuit.gate_counts c)
  in
  let term = Term.(const run $ file_pos ~doc:"OpenQASM file to display" 0) in
  Cmd.v (Cmd.info "show" ~doc:"Draw a circuit and print its statistics") term

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let unknown_backend name =
  match Qdt.Registry.suggest name with
  | Some s -> Printf.sprintf "unknown backend %s (did you mean %s?)" name s
  | None ->
      Printf.sprintf "unknown backend %s (known: %s)" name
        (String.concat ", " (Qdt.Registry.names ()))

(* A plain-string backend name validated against the registry, so a typo
   gets a closest-match suggestion instead of cmdliner's bare enum error. *)
let backend_name_arg =
  let parse s =
    if Option.is_some (Qdt.Registry.find s) then Ok s
    else Error (`Msg (unknown_backend s))
  in
  Arg.conv (parse, Format.pp_print_string)

let backend_arg =
  Arg.(value & opt backend_name_arg "decision-diagrams" & info [ "backend"; "b" ] ~docv:"BACKEND"
         ~doc:"Simulation backend: arrays, decision-diagrams, tensor-network, mps, \
               stabilizer, or auto (portfolio dispatch).")

(* The unitary prefix a shots=0 full-state request runs (measurements,
   resets and classical control stripped), shared by simulate / profile /
   run. *)
let unitary_part c =
  List.fold_left
    (fun acc i ->
      match i with
      | Circuit.Measure _ | Circuit.Reset _ | Circuit.If _ -> acc
      | _ -> Circuit.add i acc)
    (Circuit.empty (Circuit.num_qubits c))
    (Circuit.instructions c)

let print_stats stats = Printf.printf "stats: %s\n" (Qdt.Backend.stats_to_string stats)

let backend_failure err =
  prerr_endline (Qdt.Backend.error_to_string err);
  exit 1

(* The report bracket around one simulate run: start before dispatch (so
   the metrics diff and watermarks are scoped to the run), attach the
   circuit-feature and invocation sections up front — they must survive a
   crash dump — and the backend section once stats exist. *)
let report_backend_section r (stats : Qdt.Backend.stats) =
  let j = Qdt.Obs.Json.string in
  Qdt.Obs.Report.add_section r ~name:"backend"
    ~json:(Printf.sprintf "{\"name\": %s, \"reason\": %s}" (j stats.Qdt.Backend.backend)
             (match stats.Qdt.Backend.note with Some n -> j n | None -> "null"))

let simulate_cmd =
  let run c backend_name shots seed threshold gc_threshold cache_bits jobs trace
      trace_format metrics profile top report dump_on_error =
    apply_jobs jobs;
    (* The registry hands out backends behind the fixed BACKEND signature,
       so DD memory-management knobs travel through the package defaults. *)
    (match gc_threshold with
    | Some t ->
        if t < 0 then begin
          prerr_endline "--dd-gc-threshold must be >= 0 (0 disables GC)";
          exit 1
        end;
        Qdt.Dd.Pkg.default_gc_threshold := t
    | None -> ());
    (match cache_bits with
    | Some b ->
        if b < 1 || b > 24 then begin
          prerr_endline "--dd-cache-bits must be between 1 and 24";
          exit 1
        end;
        Qdt.Dd.Pkg.default_cache_bits := b
    | None -> ());
    let (module B : Qdt.Backend.BACKEND) =
      match Qdt.Registry.find backend_name with
      | Some m -> m
      | None ->
          prerr_endline (unknown_backend backend_name);
          exit 1
    in
    let unitary_part = unitary_part c in
    let n = Circuit.num_qubits c in
    (* Counts of a measuring circuit are keyed by the classical register;
       a measure-free circuit samples all qubits. *)
    let key_bits = if Circuit.has_measure c then Circuit.num_clbits c else n in
    with_obs ~profile ~top ~trace ~trace_format ~metrics @@ fun () ->
    let rep =
      if report <> None || dump_on_error then begin
        if dump_on_error then Printexc.record_backtrace true;
        let r = Qdt.Obs.Report.start () in
        Qdt.Obs.Report.add_section r ~name:"circuit"
          ~json:(Qdt.Features.to_json (Qdt.Features.analyze c));
        Qdt.Obs.Report.add_section r ~name:"invocation"
          ~json:(Printf.sprintf
                   "{\"backend\": %s, \"shots\": %d, \"seed\": %d, \"jobs\": %d}"
                   (Qdt.Obs.Json.string backend_name) shots seed (Qdt.Par.jobs ()));
        Some r
      end
      else None
    in
    let finish_report stats =
      match rep with
      | None -> ()
      | Some r ->
          report_backend_section r stats;
          let json = Qdt.Obs.Report.finish r in
          (match report with
          | Some path ->
              Qdt.Obs.Report.write_file path json;
              Printf.printf "report: wrote %s\n" path
          | None -> ())
    in
    let crash_dump msg backtrace =
      match rep with
      | Some r when dump_on_error ->
          let json = Qdt.Obs.Report.crash r ~error:msg ~backtrace in
          let path = Option.value report ~default:"qdt-crash-report.json" in
          Qdt.Obs.Report.write_file path json;
          Printf.eprintf "crash report: wrote %s\n%!" path
      | _ -> ()
    in
    let declined err =
      crash_dump (Qdt.Backend.error_to_string err) "";
      backend_failure err
    in
    (* The root span brackets only the backend call (not result printing),
       so the profile's total matches the stats wall time. *)
    let spanned f =
      match Qdt.Obs.Trace.with_span "qdt.simulate" f with
      | v -> v
      | exception e ->
          crash_dump (Printexc.to_string e) (Printexc.get_backtrace ());
          raise e
    in
    if shots = 0 then begin
      match spanned (fun () -> B.simulate unitary_part) with
      | Error err -> declined err
      | Ok (state, stats) ->
          Printf.printf "final state (backend: %s):\n" stats.Qdt.Backend.backend;
          Qdt.Linalg.Vec.iteri
            (fun k amp ->
              let p = Qdt.Linalg.Cx.norm2 amp in
              if p > threshold then
                Printf.printf "  |%s>  %-22s  p=%.6f\n" (bitstring n k)
                  (Qdt.Linalg.Cx.to_string amp) p)
            state;
          print_stats stats;
          finish_report stats
    end
    else begin
      match spanned (fun () -> B.sample ~seed ~shots c) with
      | Error err -> declined err
      | Ok (counts, stats) ->
          Printf.printf "counts over %d shots (backend: %s):\n" shots
            stats.Qdt.Backend.backend;
          List.iter
            (fun (k, count) -> Printf.printf "  %s  %d\n" (bitstring key_bits k) count)
            counts;
          print_stats stats;
          finish_report stats
    end
  in
  let shots =
    Arg.(value & opt int 0 & info [ "shots" ] ~doc:"Sample N shots instead of printing the state.")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"RNG seed.") in
  let threshold =
    Arg.(value & opt float 1e-9 & info [ "threshold" ] ~doc:"Hide amplitudes below this probability.")
  in
  let gc_threshold =
    Arg.(value & opt (some int) None & info [ "dd-gc-threshold" ] ~docv:"NODES"
           ~doc:"DD backend: run mark-and-sweep GC when the unique table grows past \
                 NODES entries (0 disables collection).")
  in
  let cache_bits =
    Arg.(value & opt (some int) None & info [ "dd-cache-bits" ] ~docv:"BITS"
           ~doc:"DD backend: each bounded compute cache holds 2^BITS entries.")
  in
  let term =
    Term.(const run $ file_pos ~doc:"OpenQASM file to simulate" 0 $ backend_arg $ shots $ seed
          $ threshold $ gc_threshold $ cache_bits $ jobs_arg $ trace_arg $ trace_format_arg
          $ metrics_arg $ profile_arg $ top_arg $ report_arg $ dump_on_error_arg)
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Simulate a circuit with a chosen data structure") term

(* ------------------------------------------------------------------ *)
(* run (batch mode over one warm session)                              *)
(* ------------------------------------------------------------------ *)

(* Like [circuit_arg] but keeps the path for per-job output labels. *)
let circuit_with_path_arg =
  let parse path = Result.map (fun c -> (path, c)) (load path) in
  let print ppf (path, _) = Format.pp_print_string ppf path in
  Arg.conv (parse, print)

let run_cmd =
  let run files extra backend_name shots seed threshold jobs trace trace_format metrics =
    apply_jobs jobs;
    let circuits = files @ extra in
    if circuits = [] then begin
      prerr_endline "qdt run: no circuits given (positional FILEs or --circuit FILE)";
      exit 1
    end;
    let (module S : Qdt.Backend.SESSION) =
      match Qdt.Registry.find_session backend_name with
      | Some m -> m
      | None ->
          prerr_endline (unknown_backend backend_name);
          exit 1
    in
    with_obs ~trace ~trace_format ~metrics @@ fun () ->
    (* One session for the whole batch: backend state (DD unique table and
       compute caches, statevector buffers, tableau rows) stays warm
       between jobs.  The label separates this batch's runs on the
       qdt.backend.runs metric. *)
    let session = S.create ~label:(Qdt.Backend.fresh_session_label ()) () in
    let total = List.length circuits in
    let failures = ref 0 in
    List.iteri
      (fun i (path, c) ->
        let job, target =
          if shots = 0 then (Qdt.Job.Full_state, unitary_part c)
          else (Qdt.Job.Sample { seed; shots }, c)
        in
        Printf.printf "[%d/%d] %s: %s\n" (i + 1) total path (Qdt.Job.describe job);
        match S.submit session target job with
        | Error err ->
            incr failures;
            Printf.printf "  error: %s\n" (Qdt.Backend.error_to_string err)
        | Ok (payload, stats) ->
            (match payload with
            | Qdt.Job.State state ->
                let n = Circuit.num_qubits target in
                Qdt.Linalg.Vec.iteri
                  (fun k amp ->
                    let p = Qdt.Linalg.Cx.norm2 amp in
                    if p > threshold then
                      Printf.printf "  |%s>  %-22s  p=%.6f\n" (bitstring n k)
                        (Qdt.Linalg.Cx.to_string amp) p)
                  state
            | Qdt.Job.Counts counts ->
                let key_bits =
                  if Circuit.has_measure c then Circuit.num_clbits c
                  else Circuit.num_qubits c
                in
                List.iter
                  (fun (k, count) ->
                    Printf.printf "  %s  %d\n" (bitstring key_bits k) count)
                  counts
            | Qdt.Job.Amplitude_of amp ->
                Printf.printf "  %s\n" (Qdt.Linalg.Cx.to_string amp)
            | Qdt.Job.Expectation v -> Printf.printf "  <Z> = %.9f\n" v);
            Printf.printf "  ";
            print_stats stats)
      circuits;
    S.close session;
    if !failures > 0 then exit 1
  in
  let files =
    Arg.(value & pos_all circuit_with_path_arg [] & info [] ~docv:"FILE"
           ~doc:"OpenQASM files to run in order through one session.")
  in
  let extra =
    Arg.(value & opt_all circuit_with_path_arg [] & info [ "circuit" ] ~docv:"FILE"
           ~doc:"Additional circuit (repeatable); appended after the \
                 positional files.")
  in
  let shots =
    Arg.(value & opt int 0 & info [ "shots" ]
           ~doc:"Sample N shots per circuit instead of printing each state.")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"RNG seed (per job).") in
  let threshold =
    Arg.(value & opt float 1e-9 & info [ "threshold" ]
           ~doc:"Hide amplitudes below this probability.")
  in
  let term =
    Term.(const run $ files $ extra $ backend_arg $ shots $ seed $ threshold
          $ jobs_arg $ trace_arg $ trace_format_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run a batch of circuits through one persistent backend session \
             (warm unique tables, compute caches and buffers between jobs)")
    term

(* ------------------------------------------------------------------ *)
(* report                                                              *)
(* ------------------------------------------------------------------ *)

let report_cmd =
  let run path prometheus =
    let src =
      try
        let ic = open_in path in
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        s
      with Sys_error msg ->
        prerr_endline msg;
        exit 1
    in
    if prometheus then begin
      (* Render the report's run-scoped metrics section in Prometheus
         text exposition format (the shape `qdt serve` will expose). *)
      match Qdt.Obs.Json.parse src with
      | Error e ->
          prerr_endline (path ^ ": not valid JSON: " ^ e);
          exit 1
      | Ok root -> (
          match Qdt.Obs.Json.member "metrics" root with
          | Some (Qdt.Obs.Json.Object fields) ->
              let snapshot =
                List.filter_map
                  (fun (name, v) ->
                    match v with
                    | Qdt.Obs.Json.Number x ->
                        (* Counters and gauges are indistinguishable in the
                           artifact; render integral values as counters. *)
                        if Float.is_integer x then
                          Some (name, Qdt.Obs.Metrics.Counter_v (int_of_float x))
                        else Some (name, Qdt.Obs.Metrics.Gauge_v x)
                    | _ -> None)
                  fields
              in
              print_string (Qdt.Obs.Metrics.render_prometheus snapshot)
          | _ ->
              prerr_endline (path ^ ": no metrics section");
              exit 1)
    end
    else
      match Qdt.Obs.Report.render src with
      | rendered -> print_string rendered
      | exception Failure msg ->
          prerr_endline (path ^ ": " ^ msg);
          exit 1
  in
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"Report artifact written by $(b,qdt simulate --report).")
  in
  let prometheus =
    Arg.(value & flag & info [ "prometheus" ]
           ~doc:"Print the report's run-scoped metrics in Prometheus text \
                 exposition format instead of the human-readable summary.")
  in
  let term = Term.(const run $ path $ prometheus) in
  Cmd.v (Cmd.info "report" ~doc:"Pretty-print a run report artifact") term

(* ------------------------------------------------------------------ *)
(* profile                                                             *)
(* ------------------------------------------------------------------ *)

(* [qdt profile] is [simulate] minus the state dump plus the hotspot
   table: run the circuit once with tracing on, aggregate the span ring
   into a profile (Qdt_obs.Profile), print the top-N table and write
   folded stacks. *)
let profile_cmd =
  let run c backend_name shots seed jobs top folded capacity =
    apply_jobs jobs;
    if capacity < 2 then begin
      prerr_endline "--ring-capacity must be >= 2";
      exit 1
    end;
    let (module B : Qdt.Backend.BACKEND) =
      match Qdt.Registry.find backend_name with
      | Some m -> m
      | None ->
          prerr_endline (unknown_backend backend_name);
          exit 1
    in
    let unitary_part = unitary_part c in
    Qdt.Obs.Trace.configure ~capacity ();
    Qdt.Obs.Trace.set_enabled true;
    let outcome =
      Qdt.Obs.Trace.with_span "qdt.profile" (fun () ->
          if shots = 0 then
            match B.simulate unitary_part with
            | Ok (_, stats) -> Ok stats
            | Error e -> Error e
          else
            match B.sample ~seed ~shots c with
            | Ok (_, stats) -> Ok stats
            | Error e -> Error e)
    in
    Qdt.Obs.Trace.set_enabled false;
    match outcome with
    | Error err -> backend_failure err
    | Ok stats ->
        Printf.printf "profiled %s (%d qubits, %d instructions, backend: %s)\n"
          (if shots = 0 then "simulate" else Printf.sprintf "sample --shots %d" shots)
          (Circuit.num_qubits c) (Circuit.count_total c) stats.Qdt.Backend.backend;
        print_profile ~top ~folded_path:folded;
        print_stats stats
  in
  let shots =
    Arg.(value & opt int 0 & info [ "shots" ]
           ~doc:"Profile sampling N shots instead of full simulation.")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"RNG seed.") in
  let folded =
    Arg.(value & opt string "profile.folded" & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Where to write the folded stacks (flamegraph.pl / speedscope).")
  in
  let capacity =
    Arg.(value & opt int (1 lsl 20) & info [ "ring-capacity" ] ~docv:"EVENTS"
           ~doc:"Trace ring capacity in events (two per span); profiles of \
                 runs that overflow it are truncated and flagged.")
  in
  let term =
    Term.(const run $ file_pos ~doc:"OpenQASM file to profile" 0 $ backend_arg $ shots
          $ seed $ jobs_arg $ top_arg $ folded $ capacity)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run a circuit under the span tracer and print where the time went")
    term

(* ------------------------------------------------------------------ *)
(* backends                                                            *)
(* ------------------------------------------------------------------ *)

let backends_cmd =
  let run () =
    let mark b = if b then "yes" else "-" in
    Printf.printf "%-18s %-6s %-5s %-7s %-7s %-11s %-9s %-9s %s\n" "backend" "state"
      "amp" "sample" "<Z>" "measure" "dynamic" "clifford" "max-qubits";
    List.iter
      (fun (module B : Qdt.Backend.BACKEND) ->
        let c = B.capabilities in
        Printf.printf "%-18s %-6s %-5s %-7s %-7s %-11s %-9s %-9s %s\n" B.name
          (mark c.Qdt.Backend.full_state)
          (mark c.Qdt.Backend.amplitude)
          (mark c.Qdt.Backend.sample)
          (mark c.Qdt.Backend.expectation_z)
          (mark c.Qdt.Backend.supports_nonunitary)
          (mark c.Qdt.Backend.dynamic)
          (if c.Qdt.Backend.clifford_only then "only" else "-")
          (match c.Qdt.Backend.max_qubits with
          | Some m -> string_of_int m
          | None -> "unbounded"))
      (Qdt.Registry.all ())
  in
  let term = Term.(const run $ const ()) in
  Cmd.v (Cmd.info "backends" ~doc:"List registered backends and their capabilities") term

(* ------------------------------------------------------------------ *)
(* compile                                                             *)
(* ------------------------------------------------------------------ *)

let coupling_arg =
  let parse s =
    let parts = String.split_on_char ':' s in
    match parts with
    | [ "line"; n ] -> Ok (Qdt.Compile.Coupling.line (int_of_string n))
    | [ "ring"; n ] -> Ok (Qdt.Compile.Coupling.ring (int_of_string n))
    | [ "grid"; r; c ] ->
        Ok (Qdt.Compile.Coupling.grid ~rows:(int_of_string r) ~cols:(int_of_string c))
    | [ "star"; n ] -> Ok (Qdt.Compile.Coupling.star (int_of_string n))
    | [ "full"; n ] -> Ok (Qdt.Compile.Coupling.fully_connected (int_of_string n))
    | [ "qx5" ] -> Ok Qdt.Compile.Coupling.ibm_qx5
    | _ -> Error (`Msg "expected line:N, ring:N, grid:R:C, star:N, full:N or qx5")
  in
  let print ppf _ = Format.fprintf ppf "<coupling>" in
  Arg.conv (parse, print)

let compile_cmd =
  let run c coupling no_optimize output trace trace_format metrics =
    let compiled =
      with_obs ~trace ~trace_format ~metrics (fun () ->
          Qdt.compile ~optimize:(not no_optimize) ~coupling c)
    in
    Printf.printf "added swaps: %d  removed gates: %d  depth: %d -> %d\n"
      compiled.Qdt.added_swaps compiled.Qdt.removed_gates (Circuit.depth c)
      (Circuit.depth compiled.Qdt.circuit);
    let text = Qasm.to_string compiled.Qdt.circuit in
    match output with
    | None -> print_string text
    | Some path ->
        let oc = open_out path in
        output_string oc text;
        close_out oc;
        Printf.printf "wrote %s\n" path
  in
  let coupling =
    Arg.(required & opt (some coupling_arg) None & info [ "coupling"; "c" ] ~docv:"MAP"
           ~doc:"Target coupling map (line:N, ring:N, grid:R:C, star:N, full:N, qx5).")
  in
  let no_optimize = Arg.(value & flag & info [ "no-optimize" ] ~doc:"Skip peephole optimization.") in
  let output = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE") in
  let term =
    Term.(const run $ file_pos ~doc:"OpenQASM file to compile" 0 $ coupling $ no_optimize $ output
          $ trace_arg $ trace_format_arg $ metrics_arg)
  in
  Cmd.v (Cmd.info "compile" ~doc:"Route a circuit onto a coupling map and optimize it") term

(* ------------------------------------------------------------------ *)
(* verify                                                              *)
(* ------------------------------------------------------------------ *)

let verify_cmd =
  let run c1 c2 checker trace trace_format metrics =
    let verdict =
      with_obs ~trace ~trace_format ~metrics (fun () -> Qdt.equivalent ~checker c1 c2)
    in
    Printf.printf "%s: %s\n" (Qdt.checker_name checker)
      (Qdt.Verify.Equiv.verdict_to_string verdict);
    match verdict with
    | Qdt.Verify.Equiv.Not_equivalent -> exit 1
    | Qdt.Verify.Equiv.Equivalent | Qdt.Verify.Equiv.Inconclusive -> ()
  in
  let checker =
    let all = List.map (fun m -> (Qdt.checker_name m, m)) Qdt.all_checkers in
    Arg.(value & opt (enum all) Qdt.Check_dd & info [ "method"; "m" ] ~docv:"METHOD"
           ~doc:"Equivalence checking method: arrays, dd, dd-alternating, zx or simulation.")
  in
  let term =
    Term.(const run
          $ file_pos ~doc:"First OpenQASM file" 0
          $ file_pos ~doc:"Second OpenQASM file" 1
          $ checker $ trace_arg $ trace_format_arg $ metrics_arg)
  in
  Cmd.v (Cmd.info "verify" ~doc:"Check two circuits for equivalence") term

(* ------------------------------------------------------------------ *)
(* gen                                                                 *)
(* ------------------------------------------------------------------ *)

let gen_cmd =
  let run family n seed output =
    let circuit =
      match family with
      | "bell" -> Generators.bell
      | "ghz" -> Generators.ghz n
      | "w" -> Generators.w_state n
      | "qft" -> Generators.qft n
      | "grover" -> Generators.grover ~marked:(max 0 (min ((1 lsl n) - 1) 1)) n
      | "bv" -> Generators.bernstein_vazirani ~secret:((1 lsl n) - 1) n
      | "adder" -> Generators.cuccaro_adder n
      | "random" -> Generators.random_circuit ~seed ~depth:n 4
      | "clifford" -> Generators.random_clifford ~seed ~gates:(10 * n) n
      | "clifford-t" -> Generators.random_clifford_t ~seed ~gates:(10 * n) ~t_fraction:0.25 n
      | "teleport" -> Generators.teleportation ()
      | "rus" -> Generators.repeat_until_success ~rounds:(max 1 n) ()
      | "repetition" -> Generators.repetition_code ~cycles:(max 1 n) ()
      | other -> failwith (Printf.sprintf "unknown family %S" other)
    in
    let text = Qasm.to_string circuit in
    match output with
    | None -> print_string text
    | Some path ->
        let oc = open_out path in
        output_string oc text;
        close_out oc
  in
  let family =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FAMILY"
           ~doc:"bell, ghz, w, qft, grover, bv, adder, random, clifford, clifford-t, \
                 teleport, rus, repetition")
  in
  let n = Arg.(value & opt int 3 & info [ "n" ] ~doc:"Size parameter.") in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"RNG seed.") in
  let output = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE") in
  let term = Term.(const run $ family $ n $ seed $ output) in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a standard benchmark circuit as OpenQASM") term

(* ------------------------------------------------------------------ *)
(* export                                                              *)
(* ------------------------------------------------------------------ *)

let export_cmd =
  let run c format output =
    let text =
      match format with
      | `Dd ->
          let st = Qdt.Dd.Sim.run_unitary c in
          Qdt.Dd.Export.to_dot (Qdt.Dd.Sim.manager st) (Qdt.Dd.Sim.root st)
      | `Zx -> Qdt.Zx.Diagram.to_dot (Qdt.Zx.Translate.of_circuit c)
      | `Zx_reduced ->
          let d = Qdt.Zx.Translate.of_circuit c in
          ignore (Qdt.Zx.Simplify.full_reduce d);
          Qdt.Zx.Diagram.to_dot d
    in
    match output with
    | None -> print_string text
    | Some path ->
        let oc = open_out path in
        output_string oc text;
        close_out oc
  in
  let format =
    Arg.(value & opt (enum [ ("dd", `Dd); ("zx", `Zx); ("zx-reduced", `Zx_reduced) ]) `Dd
         & info [ "format"; "f" ] ~docv:"FORMAT"
             ~doc:"dd (state decision diagram), zx, or zx-reduced.")
  in
  let output = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE") in
  let term = Term.(const run $ file_pos ~doc:"OpenQASM file" 0 $ format $ output) in
  Cmd.v (Cmd.info "export" ~doc:"Export the circuit's DD or ZX-diagram as Graphviz DOT") term

(* ------------------------------------------------------------------ *)
(* optimize                                                            *)
(* ------------------------------------------------------------------ *)

(* T-like gates: non-Clifford diagonal rotations however they are spelled *)
let non_clifford_count c =
  List.fold_left
    (fun acc instr ->
      match instr with
      | Circuit.Apply { gate; _ } -> (
          match Qdt.Compile.Optimize.diag_angle gate with
          | Some theta ->
              let r = theta /. (Float.pi /. 2.0) in
              if Float.abs (r -. Float.round r) < 1e-9 then acc else acc + 1
          | None -> acc)
      | _ -> acc)
    0 (Circuit.instructions c)

let optimize_cmd =
  let run c method_ output =
    let optimized =
      match method_ with
      | `Peephole -> fst (Qdt.Compile.Optimize.optimize c)
      | `Zx -> Qdt.Zx.Extract.optimize_circuit c
      | `Phase_poly -> Qdt.Compile.Phase_poly.optimize_blocks c
    in
    Printf.printf "gates: %d -> %d   depth: %d -> %d   non-clifford: %d -> %d\n"
      (Circuit.count_total c)
      (Circuit.count_total optimized)
      (Circuit.depth c) (Circuit.depth optimized)
      (non_clifford_count c)
      (non_clifford_count optimized);
    let text = Qasm.to_string optimized in
    match output with
    | None -> print_string text
    | Some path ->
        let oc = open_out path in
        output_string oc text;
        close_out oc;
        Printf.printf "wrote %s\n" path
  in
  let method_ =
    Arg.(value
         & opt (enum [ ("peephole", `Peephole); ("zx", `Zx); ("phase-poly", `Phase_poly) ]) `Peephole
         & info [ "method"; "m" ] ~docv:"METHOD"
             ~doc:"Optimization method: peephole, zx (reduce + extract) or phase-poly.")
  in
  let output = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE") in
  let term = Term.(const run $ file_pos ~doc:"OpenQASM file to optimize" 0 $ method_ $ output) in
  Cmd.v (Cmd.info "optimize" ~doc:"Optimize a circuit (peephole, ZX pipeline, or phase polynomial)") term

(* ------------------------------------------------------------------ *)
(* serve / loadgen                                                     *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let run host port workers queue_depth timeout_ms max_sessions access_log
      trace trace_format metrics =
    with_obs ~trace ~trace_format ~metrics @@ fun () ->
    let cfg =
      {
        Qdt_serve.Server.default_config with
        host;
        port;
        workers;
        queue_depth;
        default_timeout_ms = timeout_ms;
        max_sessions;
        access_log;
      }
    in
    match Qdt_serve.Server.run cfg with
    | () -> ()
    | exception Unix.Unix_error (err, _, _) ->
        Printf.eprintf "qdt serve: cannot listen on %s:%d: %s\n" host port
          (Unix.error_message err);
        exit 1
  in
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
           ~doc:"Address to bind.")
  in
  let port =
    Arg.(value & opt int 8177 & info [ "port"; "p" ] ~docv:"PORT"
           ~doc:"Port to bind (0 picks an ephemeral port).")
  in
  let workers =
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N"
           ~doc:"Worker domains executing jobs.")
  in
  let queue_depth =
    Arg.(value & opt int 64 & info [ "queue-depth" ] ~docv:"N"
           ~doc:"Queued jobs beyond which submissions get 429 + Retry-After.")
  in
  let timeout_ms =
    Arg.(value & opt int 30_000 & info [ "timeout-ms" ] ~docv:"MS"
           ~doc:"Default per-job wall-clock budget (overridable per job).")
  in
  let max_sessions =
    Arg.(value & opt int 32 & info [ "max-sessions" ] ~docv:"N"
           ~doc:"Warm sessions kept open (LRU eviction past this).")
  in
  let access_log =
    Arg.(value & opt (some string) None & info [ "access-log" ] ~docv:"FILE"
           ~doc:"Append one JSON line per request to $(docv).")
  in
  let term =
    Term.(const run $ host $ port $ workers $ queue_depth $ timeout_ms
          $ max_sessions $ access_log $ trace_arg $ trace_format_arg
          $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve OpenQASM jobs over HTTP/JSONL with warm per-client \
             sessions and a Prometheus /metrics endpoint")
    term

let loadgen_cmd =
  let run host port clients jobs backend no_session seed =
    let s =
      Qdt_serve.Loadgen.run ~host ~port ~backend ~use_sessions:(not no_session)
        ~seed ~clients ~jobs_per_client:jobs ()
    in
    print_endline (Qdt_serve.Loadgen.pp_summary s);
    if s.Qdt_serve.Loadgen.failed > 0 then exit 1
  in
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
           ~doc:"Server address.")
  in
  let port =
    Arg.(value & opt int 8177 & info [ "port"; "p" ] ~docv:"PORT"
           ~doc:"Server port.")
  in
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N"
           ~doc:"Concurrent client connections.")
  in
  let jobs =
    Arg.(value & opt int 25 & info [ "jobs" ] ~docv:"N"
           ~doc:"Jobs per client (mixed sample / expectation / amplitude).")
  in
  let no_session =
    Arg.(value & flag & info [ "no-session" ]
           ~doc:"Skip warm sessions: every job pays a cold engine \
                 create/close on the server.")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Base RNG seed.") in
  let term =
    Term.(const run $ host $ port $ clients $ jobs $ backend_arg $ no_session
          $ seed)
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Drive a running qdt serve with N concurrent clients and report \
             jobs/sec and p50/p99 latency")
    term

let main =
  let doc = "quantum design tools: arrays, decision diagrams, tensor networks, ZX-calculus" in
  Cmd.group (Cmd.info "qdt" ~version:"1.0.0" ~doc)
    [ show_cmd; simulate_cmd; run_cmd; report_cmd; profile_cmd; backends_cmd; compile_cmd;
      verify_cmd; gen_cmd; export_cmd; optimize_cmd; serve_cmd; loadgen_cmd ]

let () = exit (Cmd.eval main)
